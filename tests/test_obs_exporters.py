"""Exporters: Prometheus text exposition and the JSON-lines logger.

The exposition round trip demanded by the ISSUE runs a real serve
session, renders ``QueryEngine.metrics_text()`` and re-parses it with a
minimal line parser, checking the format invariants Prometheus relies
on: cumulative monotone ``_bucket`` series and a ``+Inf`` bucket equal
to ``_count``.
"""

import io
import json
import math

import numpy as np
import pytest

from repro import cli
from repro.obs import (
    JsonLinesLogger,
    MetricsRegistry,
    render_prometheus,
    set_tracer,
)
from repro.obs.exporters import escape_label_value, sanitize_metric_name
from repro.obs.trace import Tracer
from repro.serve.engine import QueryEngine
from repro.serve.store import StoredEmbeddings


# ---------------------------------------------------------------------------
# a minimal exposition-format parser (what a scraper sees)
# ---------------------------------------------------------------------------
def parse_prometheus(text: str):
    """``(types, samples)``: metric -> declared type, and a list of
    ``(name, labels, value)`` tuples in file order."""
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        head, _, raw_value = line.rpartition(" ")
        labels: dict[str, str] = {}
        name = head
        if head.endswith("}"):
            name, _, inner = head.partition("{")
            for part in inner[:-1].split(","):
                key, _, value = part.partition("=")
                assert value.startswith('"') and value.endswith('"'), line
                labels[key] = value[1:-1]
        value = (math.inf if raw_value == "+Inf"
                 else -math.inf if raw_value == "-Inf"
                 else float(raw_value))
        samples.append((name, labels, value))
    return types, samples


def histogram_series(samples, base: str):
    """The ``(buckets, sum, count)`` of one histogram, keyed by its
    non-``le`` label set."""
    series: dict[tuple, dict] = {}
    for name, labels, value in samples:
        if name not in (f"{base}_bucket", f"{base}_sum", f"{base}_count"):
            continue
        plain = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(plain, {"buckets": [], "sum": None,
                                          "count": None})
        if name == f"{base}_bucket":
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            entry["buckets"].append((bound, value))
        elif name == f"{base}_sum":
            entry["sum"] = value
        elif name == f"{base}_count":
            entry["count"] = value
    return series


def assert_histogram_invariants(series):
    assert series, "histogram emitted no series"
    for entry in series.values():
        buckets = entry["buckets"]
        assert buckets, "histogram series without buckets"
        bounds = [bound for bound, _ in buckets]
        assert bounds == sorted(bounds)
        assert bounds[-1] == math.inf, "missing +Inf bucket"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == entry["count"], "+Inf bucket != _count"
        assert entry["sum"] is not None


# ---------------------------------------------------------------------------
# round trip over an instrumented serve run
# ---------------------------------------------------------------------------
@pytest.fixture
def engine():
    rng = np.random.default_rng(0)
    source = rng.normal(size=(40, 8))
    target = rng.normal(size=(50, 8))
    stored = StoredEmbeddings(
        version="v001",
        sources=[f"s{i}" for i in range(len(source))],
        targets=[f"t{i}" for i in range(len(target))],
        source_matrix=source,
        target_matrix=target,
    )
    return QueryEngine(stored, k=5, batch_size=16)


class TestPrometheusRoundTrip:
    def test_serve_metrics_text_invariants(self, engine):
        engine.query_batch([f"s{i}" for i in range(30)])
        engine.query_batch(["s0", "s1", "s2"])  # cache hits
        text = engine.metrics_text()
        types, samples = parse_prometheus(text)

        assert types["repro_serve_queries_total"] == "counter"
        assert types["repro_serve_latency_seconds"] == "histogram"
        values = {name: value for name, labels, value in samples
                  if not labels}
        # cache hits never reach the index, so only 30 queries count
        assert values["repro_serve_queries_total"] == 30
        assert values["repro_serve_cache_hits_total"] == 3
        assert_histogram_invariants(
            histogram_series(samples, "repro_serve_latency_seconds"))
        latency = histogram_series(samples, "repro_serve_latency_seconds")
        (entry,) = latency.values()
        assert entry["count"] == engine.metrics.latency.count

    def test_snapshot_json_round_trip_renders_identically(self, engine):
        engine.query_batch(["s0", "s1", "s2"])
        registry = engine.metrics.registry
        blob = json.dumps(registry.snapshot())
        assert render_prometheus(json.loads(blob)) == \
            render_prometheus(registry)

    def test_labelled_and_sparse_snapshot_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req", side="kg1").inc(2)
        registry.counter("req", side="kg2").inc(5)
        registry.gauge("loss").set(0.25)
        hist = registry.histogram("step_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        types, samples = parse_prometheus(render_prometheus(registry))
        assert types == {
            "repro_req_total": "counter",
            "repro_loss": "gauge",
            "repro_step_seconds": "histogram",
        }
        counters = {labels["side"]: value for name, labels, value in samples
                    if name == "repro_req_total"}
        assert counters == {"kg1": 2, "kg2": 5}
        series = histogram_series(samples, "repro_step_seconds")
        assert_histogram_invariants(series)
        (entry,) = series.values()
        # cumulative: <=0.1 holds 1, <=1.0 holds 3, +Inf holds all 4
        assert entry["buckets"] == [(0.1, 1), (1.0, 3), (math.inf, 4)]
        assert entry["sum"] == pytest.approx(3.05)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_name_and_label_sanitization(self):
        assert sanitize_metric_name("serve.latency-p99") == \
            "serve_latency_p99"
        assert sanitize_metric_name("2fast", namespace="ns") == "ns_2fast"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        registry = MetricsRegistry()
        registry.counter("serve.queries", **{"index": 'iv"f'}).inc()
        types, samples = parse_prometheus(render_prometheus(registry))
        ((name, labels, value),) = samples
        assert name == "repro_serve_queries_total"
        assert labels["index"] == '\\"'.join(["iv", "f"])


# ---------------------------------------------------------------------------
# structured JSON-lines logging
# ---------------------------------------------------------------------------
class TestJsonLinesLogger:
    def test_stamps_trace_and_span_ids(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        sink = io.StringIO()
        try:
            logger = JsonLinesLogger(sink, clock=lambda: 123.0)
            with tracer.span("fold", approach="MTransE"):
                logger.log("epoch_done", epoch=3, loss=0.5)
            logger.log("run_done", level="warning")
        finally:
            set_tracer(previous)
        first, second = [json.loads(line)
                         for line in sink.getvalue().splitlines()]
        assert first["event"] == "epoch_done"
        assert first["trace_id"] == tracer.trace_id
        assert first["span"] == "fold"
        assert first["span_id"] == tracer.events[-1]["id"]
        assert first["ts"] == 123.0 and first["loss"] == 0.5
        # outside any span: trace id only
        assert second["trace_id"] == tracer.trace_id
        assert "span_id" not in second
        assert second["level"] == "warning"

    def test_no_tracer_means_plain_records(self):
        previous = set_tracer(None)
        sink = io.StringIO()
        try:
            JsonLinesLogger(sink).log("hello", n=1)
        finally:
            set_tracer(previous)
        record = json.loads(sink.getvalue())
        assert record["event"] == "hello" and record["n"] == 1
        assert "trace_id" not in record

    def test_path_sink_owns_handle(self, tmp_path):
        path = tmp_path / "app.jsonl"
        with JsonLinesLogger(path) as logger:
            logger.log("a")
            logger.log("b")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_distinct_tracers_get_distinct_trace_ids(self):
        assert Tracer().trace_id != Tracer().trace_id


# ---------------------------------------------------------------------------
# CLI export paths
# ---------------------------------------------------------------------------
class TestObsExportCLI:
    def _events_file(self, tmp_path, engine):
        engine.query_batch(["s0", "s1"])
        events = [
            {"type": "span", "name": "fold", "dur_s": 0.1},
            {"type": "metrics", "name": "final",
             "snapshot": engine.metrics.registry.snapshot()},
        ]
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n",
                        encoding="utf-8")
        return path

    def test_export_from_events_file(self, tmp_path, engine, capsys):
        path = self._events_file(tmp_path, engine)
        assert cli.main(["obs-export", "--prometheus",
                         "--events", str(path)]) == 0
        types, samples = parse_prometheus(capsys.readouterr().out)
        assert types["repro_serve_queries_total"] == "counter"
        assert_histogram_invariants(
            histogram_series(samples, "repro_serve_latency_seconds"))

    def test_export_to_file(self, tmp_path, engine, capsys):
        events = self._events_file(tmp_path, engine)
        out = tmp_path / "exported" / "metrics.prom"
        assert cli.main(["obs-export", "--prometheus", "--events",
                         str(events), "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        types, _ = parse_prometheus(out.read_text(encoding="utf-8"))
        assert "repro_serve_latency_seconds" in types

    def test_export_requires_format_flag(self, tmp_path, capsys):
        assert cli.main(["obs-export"]) == 2
        assert "--prometheus" in capsys.readouterr().err

    def test_export_missing_sources(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert cli.main(["obs-export", "--prometheus",
                         "--events", str(missing)]) == 2
        assert cli.main(["obs-export", "--prometheus",
                         "--ledger", str(tmp_path / "none.jsonl")]) == 1
        capsys.readouterr()
