"""Integration tests: telemetry across train / pipeline / serve / CLI.

Covers the ISSUE acceptance criteria: nested fit spans, op-level time
attribution covering >=90% of the traced hot-loop wall time, the
zero-cost-when-off overhead bound, and the ``repro obs-report`` round
trip over a generated ``events.jsonl``.
"""

import json
import time

import numpy as np
import pytest

from repro import cli, obs
from repro.approaches import ApproachConfig
from repro.approaches.trans_family import MTransE
from repro.autodiff.tensor import Tensor
from repro.obs.opprof import _FUNCTION_KINDS, _METHOD_KINDS
from repro.pipeline import cross_validate
from repro.serve.metrics import LatencyHistogram, ServingMetrics


@pytest.fixture
def traced_fit(enfr_pair):
    """A 2-epoch MTransE fit under full instrumentation."""
    split = enfr_pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
    approach = MTransE(
        ApproachConfig(dim=64, epochs=2, batch_size=512, valid_every=1),
        negative_sampling=True,
    )
    with obs.capture(profile_ops=True) as cap:
        log = approach.fit(enfr_pair, split)
    return cap, log


class TestInstrumentedTraining:
    def test_fit_emits_nested_spans(self, traced_fit):
        cap, log = traced_fit
        by_name = {}
        for event in cap.events:
            by_name.setdefault(event["name"], []).append(event)
        ids = {e["id"]: e for events in by_name.values() for e in events}

        assert len(by_name["fit"]) == 1
        fit_event = by_name["fit"][0]
        assert fit_event["parent_id"] is None
        assert fit_event["attrs"]["approach"] == "MTransE"
        assert len(by_name["epoch"]) == log.epochs_run == 2

        for epoch_event in by_name["epoch"]:
            assert ids[epoch_event["parent_id"]]["name"] == "fit"
        for leaf in ("neg_sampling", "forward", "backward", "step"):
            assert leaf in by_name, f"missing {leaf} spans"
            for event in by_name[leaf]:
                assert ids[event["parent_id"]]["name"] == "epoch"
        # per-batch spans: same count for every hot-loop phase
        n_steps = len(by_name["step"])
        assert n_steps > 0
        assert len(by_name["forward"]) == n_steps
        assert len(by_name["backward"]) == n_steps
        # epoch wall time contains its children's
        for epoch_event in by_name["epoch"]:
            children = [e for e in cap.events
                        if e.get("parent_id") == epoch_event["id"]]
            assert sum(c["dur_s"] for c in children) <= epoch_event["dur_s"] + 1e-6

    def test_epoch_loss_attrs_match_log(self, traced_fit):
        cap, log = traced_fit
        epoch_losses = [e["attrs"]["loss"] for e in cap.events
                        if e["name"] == "epoch"]
        assert epoch_losses == pytest.approx(log.losses)

    def test_gauges_recorded(self, traced_fit):
        cap, _ = traced_fit
        gauges = cap.registry.snapshot()["gauges"]
        assert gauges["train.loss{approach=MTransE}"] > 0
        assert gauges["train.grad_norm{approach=MTransE}"] > 0
        assert gauges["train.touched_rows{approach=MTransE}"] > 0

    def test_op_attribution_covers_hot_loop(self, traced_fit):
        """Acceptance: op-level attribution sums to >=90% of the traced
        wall time of the hot-loop spans (forward/backward/step)."""
        cap, _ = traced_fit
        hot_wall = sum(e["dur_s"] for e in cap.events
                       if e["name"] in ("forward", "backward", "step"))
        attributed = cap.profiler.total_self_seconds()
        assert hot_wall > 0
        coverage = attributed / hot_wall
        assert coverage >= 0.90, f"op attribution covers only {coverage:.1%}"

    def test_op_kinds_attributed(self, traced_fit):
        cap, _ = traced_fit
        kinds = set(cap.profiler.stats)
        assert {"matmul", "gather", "optimizer.step"} <= kinds
        assert any(kind.endswith(".bwd") for kind in kinds)
        for stat in cap.profiler.stats.values():
            assert stat.count > 0
            assert stat.self_seconds <= stat.total_seconds + 1e-9

    def test_training_log_telemetry_without_tracing(self, enfr_pair,
                                                    fast_config):
        """epoch_seconds / peak_rss_bytes populate on untraced runs too."""
        split = enfr_pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
        approach = MTransE(fast_config)
        log = approach.fit(enfr_pair, split)
        assert len(log.epoch_seconds) == log.epochs_run
        assert all(s >= 0 for s in log.epoch_seconds)
        assert log.peak_rss_bytes > 0
        assert sum(log.epoch_seconds) <= log.train_seconds + 1e-6


class TestZeroCostWhenOff:
    def test_ops_unpatched_by_default(self):
        for name in _METHOD_KINDS:
            assert not hasattr(getattr(Tensor, name), "__wrapped__"), \
                f"Tensor.{name} left wrapped while profiling is off"
        from repro.autodiff import optim, tensor
        assert not hasattr(optim.Optimizer.step, "__wrapped__")
        for name in _FUNCTION_KINDS:
            assert not hasattr(getattr(tensor, name), "__wrapped__")
        assert tensor._BACKWARD_OP_HOOK is None

    def test_profiler_restores_on_exit(self):
        original = Tensor.__mul__
        with obs.profile_ops():
            assert Tensor.__mul__ is not original
        assert Tensor.__mul__ is original

    def test_double_enable_raises(self):
        with obs.profile_ops():
            with pytest.raises(RuntimeError):
                obs.enable_op_profiler()

    @pytest.fixture
    def disabled_overhead(self, enfr_pair):
        """Measured cost of the disabled instrumentation on a fixed
        50-step run: (estimated overhead seconds, run seconds)."""
        assert not obs.tracing_enabled()
        split = enfr_pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
        config = ApproachConfig(dim=32, epochs=10, batch_size=64,
                                valid_every=0)
        approach = MTransE(config, negative_sampling=True)
        started = time.perf_counter()
        log = approach.fit(enfr_pair, split)
        run_seconds = time.perf_counter() - started
        assert log.steps_run >= 50, "fixture must exercise >=50 steps"

        # Per-call cost of a disabled span: enter+exit of the shared
        # no-op, measured over enough calls to dominate timer noise.
        calls = 20_000
        t0 = time.perf_counter()
        for _ in range(calls):
            with obs.span("off"):
                pass
        per_call = (time.perf_counter() - t0) / calls
        # 4 hot-loop spans per step + epoch/normalize/fit framing
        span_calls = 4 * log.steps_run + 3 * log.epochs_run + 2
        return per_call * span_calls, run_seconds

    def test_disabled_overhead_under_5_percent(self, disabled_overhead):
        overhead, run_seconds = disabled_overhead
        assert overhead < 0.05 * run_seconds, (
            f"disabled instrumentation costs {overhead:.4f}s on a "
            f"{run_seconds:.4f}s run ({overhead / run_seconds:.1%} >= 5%)"
        )


class TestPipelineSpans:
    def test_cross_validate_emits_fold_spans(self, enfr_pair):
        with obs.capture() as cap:
            result = cross_validate(
                lambda: MTransE(ApproachConfig(dim=16, epochs=2,
                                               valid_every=0)),
                enfr_pair, n_folds=2,
            )
        names = [e["name"] for e in cap.events]
        assert names.count("fold") == 2
        assert names.count("cross_validate") == 1
        assert names.count("evaluate") == 2
        cv_event = next(e for e in cap.events
                        if e["name"] == "cross_validate")
        assert cv_event["attrs"]["approach"] == "MTransE"
        # spans feed CVResult telemetry
        assert result.mean_epoch_seconds > 0
        assert result.peak_rss_bytes > 0


class TestServingMigration:
    def test_latency_histogram_reservoir_cap(self):
        hist = LatencyHistogram(max_samples=100)
        for i in range(1_000):
            hist.observe(i / 1000.0)
        assert hist.count == 1_000
        assert hist.n_samples == 100  # memory bounded

    def test_latency_percentiles_exact_below_cap(self):
        hist = LatencyHistogram()
        values = list(np.random.default_rng(1).uniform(0, 0.1, size=500))
        for v in values:
            hist.observe(v)
        assert hist.percentile(95) == pytest.approx(
            float(np.percentile(values, 95))
        )
        summary = hist.summary()
        assert summary["count"] == 500
        assert summary["p50_ms"] < summary["p95_ms"] < summary["p99_ms"]

    def test_serving_metrics_api_preserved(self):
        metrics = ServingMetrics(clock=time.perf_counter)
        metrics.record_batch(10, 0.002)
        metrics.record_batch(5, 0.001)
        metrics.record_cache(hits=3, misses=2)
        assert metrics.queries == 15
        assert metrics.batches == 2
        assert metrics.cache_hits == 3
        assert metrics.cache_misses == 2
        assert metrics.cache_hit_rate == pytest.approx(0.6)
        assert metrics.qps == pytest.approx(15 / 0.003)
        assert metrics.latency.count == 2
        assert "p95_ms" in metrics.summary()
        assert "qps" in metrics.format()

    def test_serving_metrics_on_shared_registry(self):
        registry = obs.MetricsRegistry()
        metrics = ServingMetrics(registry=registry)
        metrics.record_batch(4, 0.001)
        snap = registry.snapshot()
        assert snap["counters"]["serve.queries"] == 4
        assert snap["histograms"]["serve.latency_seconds"]["count"] == 1

    def test_two_default_metrics_are_isolated(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_batch(3, 0.001)
        assert b.queries == 0


class TestCLIRoundTrip:
    def test_obs_smoke_and_report_round_trip(self, tmp_path, capsys):
        """Tier-1 smoke: obs-smoke generates events.jsonl, obs-report
        renders it and the Chrome export is valid Trace Event JSON."""
        out = tmp_path / "smoke"
        code = cli.main(["obs-smoke", "--out", str(out), "--epochs", "2",
                         "--size", "120", "--dim", "16"])
        assert code == 0
        events_path = out / "events.jsonl"
        assert events_path.is_file()
        assert (out / "trace.json").is_file()

        chrome_path = tmp_path / "chrome.json"
        code = cli.main(["obs-report", str(events_path),
                         "--chrome", str(chrome_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "fit" in output
        assert "epoch" in output
        assert "op profile" in output

        for path in (chrome_path, out / "trace.json"):
            trace = json.loads(path.read_text(encoding="utf-8"))
            assert isinstance(trace["traceEvents"], list)
            assert trace["traceEvents"], "empty Chrome trace"
            for event in trace["traceEvents"]:
                assert event["ph"] == "X"
                assert {"name", "ts", "dur", "pid", "tid"} <= set(event)

        events = obs.load_events(events_path)
        assert any(e.get("type") == "op_profile" for e in events)
        assert any(e.get("type") == "span" and e["name"] == "fit"
                   for e in events)

    def test_obs_report_missing_file(self, tmp_path, capsys):
        code = cli.main(["obs-report", str(tmp_path / "none.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestObsReportTolerance:
    """obs-report over partial/corrupt event files: warn, never crash."""

    SPAN = json.dumps({"type": "span", "name": "fit", "id": 1,
                       "parent_id": None, "depth": 0, "ts": 0.0,
                       "dur_s": 1.0, "cpu_s": 0.9,
                       "rss_peak_delta_bytes": 0})

    def test_corrupt_lines_skipped_with_warning(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(self.SPAN + '\n{"type": "span", "na\n[1, 2]\n',
                        encoding="utf-8")
        assert cli.main(["obs-report", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 2 unreadable line(s)" in captured.err
        assert "fit" in captured.out

    def test_nothing_readable_exits_1(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text("garbage\n", encoding="utf-8")
        assert cli.main(["obs-report", str(path)]) == 1
        assert "no readable telemetry events" in capsys.readouterr().err

    def test_load_events_strict_vs_tolerant(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(self.SPAN + "\nbroken\n", encoding="utf-8")
        with pytest.raises(ValueError):
            obs.load_events(path)
        events, skipped = obs.load_events_tolerant(path)
        assert len(events) == 1 and skipped == 1
