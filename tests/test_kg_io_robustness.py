"""Robustness of the OpenEA-format dataset I/O (repro.kg.io)."""

import warnings

import pytest

from repro import faults
from repro.datagen import benchmark_pair
from repro.faults import InjectedFault
from repro.kg.io import (
    PAIR_FILES,
    load_pair,
    read_links,
    read_triples,
    save_pair,
    write_links,
    write_triples,
)


@pytest.fixture(scope="module")
def saved_pair_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("pair")
    pair = benchmark_pair("EN-FR", size=80, method="direct", seed=0)
    save_pair(pair, directory)
    return directory, pair


# ------------------------------------------------------------- load_pair
def test_load_pair_round_trips(saved_pair_dir):
    directory, pair = saved_pair_dir
    loaded = load_pair(directory)
    assert loaded.kg1.relation_triples == pair.kg1.relation_triples
    assert loaded.alignment == pair.alignment


def test_load_pair_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError, match="does not exist"):
        load_pair(tmp_path / "nope")


def test_load_pair_names_every_missing_file(tmp_path):
    # an empty directory is missing all five OpenEA files
    (tmp_path / "empty").mkdir()
    with pytest.raises(FileNotFoundError) as excinfo:
        load_pair(tmp_path / "empty")
    message = str(excinfo.value)
    for fname in PAIR_FILES:
        assert fname in message


def test_load_pair_names_single_missing_file(saved_pair_dir, tmp_path):
    directory, pair = saved_pair_dir
    partial = tmp_path / "partial"
    save_pair(pair, partial)
    (partial / "ent_links").unlink()
    with pytest.raises(FileNotFoundError, match="missing ent_links"):
        load_pair(partial)


def test_load_pair_truncated_file_has_line_number(saved_pair_dir, tmp_path):
    directory, pair = saved_pair_dir
    damaged = tmp_path / "damaged"
    save_pair(pair, damaged)
    # simulate a mid-line truncation on the relation file
    path = damaged / "rel_triples_1"
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:5],
                    encoding="utf-8")
    with pytest.raises(ValueError, match=rf"rel_triples_1:{len(lines)}:"):
        load_pair(damaged)
    # the forgiving mode skips the torn line with a warning instead
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        loaded = load_pair(damaged, max_bad_lines=1)
    assert any("line skipped" in str(w.message) for w in caught)
    assert len(loaded.kg1.relation_triples) == len(lines) - 1


def test_load_pair_empty_file_is_tolerated(saved_pair_dir, tmp_path):
    # an empty (zero-triple) file is valid OpenEA content, not an error
    directory, pair = saved_pair_dir
    sparse = tmp_path / "sparse"
    save_pair(pair, sparse)
    (sparse / "attr_triples_1").write_text("", encoding="utf-8")
    loaded = load_pair(sparse)
    assert loaded.kg1.attribute_triples == []


# ----------------------------------------------------------- bad lines
def test_read_triples_strict_by_default(tmp_path):
    path = tmp_path / "t"
    path.write_text("a\tb\tc\nbroken line\n", encoding="utf-8")
    with pytest.raises(ValueError, match=r":2: expected 3 fields, got 1"):
        read_triples(path)


def test_read_triples_max_bad_lines_budget(tmp_path):
    path = tmp_path / "t"
    path.write_text("a\tb\tc\nbad1\nbad2\nd\te\tf\n", encoding="utf-8")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        triples = read_triples(path, max_bad_lines=2)
    assert triples == [("a", "b", "c"), ("d", "e", "f")]
    assert len(caught) == 2
    # one more bad line than the budget: strict again, names the budget
    path.write_text("bad1\nbad2\nbad3\n", encoding="utf-8")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with pytest.raises(ValueError, match="max_bad_lines=2"):
            read_triples(path, max_bad_lines=2)


def test_read_links_max_bad_lines(tmp_path):
    path = tmp_path / "links"
    path.write_text("a\tb\nc\td\te\n", encoding="utf-8")
    with pytest.raises(ValueError):
        read_links(path)
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        assert read_links(path, max_bad_lines=1) == [("a", "b")]


# --------------------------------------------------------- atomic write
def test_write_triples_is_atomic(tmp_path):
    path = tmp_path / "rel"
    write_triples(path, [("a", "b", "c")])
    with faults.inject("io.write:nth=1:mode=raise:stage=pre"):
        with pytest.raises(InjectedFault):
            write_triples(path, [("x", "y", "z")] * 100)
    # crash mid-write: the previous complete file is still what readers see
    assert read_triples(path) == [("a", "b", "c")]


def test_write_links_round_trip(tmp_path):
    path = tmp_path / "deep" / "nested" / "links"
    write_links(path, [("a", "b"), ("c", "d")])
    assert read_links(path) == [("a", "b"), ("c", "d")]
