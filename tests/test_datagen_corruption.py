"""Corruption knobs: manifests, invariants, io, and bit-exact back-compat."""

import hashlib
import json

import numpy as np
import pytest

from repro.datagen import (
    FamilySpec,
    ViewConfig,
    WorldConfig,
    corrupt_pair,
    dangling_sources,
    derive_view,
    drop_attributes,
    generate_world,
    remove_counterparts,
    rewire_links,
    smoke_pair,
    source_pair,
)
from repro.datagen.corruption import corruption_rng
from repro.datagen.families import benchmark_pair
from repro.kg import load_pair, save_pair, validate_pair


def _view_digest(kg, uri) -> str:
    payload = {
        "rel": kg.relation_triples,
        "attr": kg.attribute_triples,
        "uri": sorted(uri.items()),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _pair_digest(pair) -> str:
    payload = {
        "rel1": pair.kg1.relation_triples,
        "rel2": pair.kg2.relation_triples,
        "attr1": pair.kg1.attribute_triples,
        "attr2": pair.kg2.attribute_triples,
        "alignment": pair.alignment,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------------
# back-compat: zero rates are bit-identical to the pre-corruption output
# ---------------------------------------------------------------------------
def test_zero_rates_bit_identical_to_pre_corruption_output():
    """Golden sha256 digests computed before the corruption knobs existed.

    The corruption RNG is a separate stream (sha256-keyed off the view
    seed), so adding the knobs must not perturb a single byte of clean
    output.  If this test fails, every downstream golden number (splits,
    trained metrics, sampled datasets) silently shifts too.
    """
    world = generate_world(WorldConfig(n_entities=200, seed=3))
    kg, uri = derive_view(world, ViewConfig(name="X", seed=5))
    assert _view_digest(kg, uri) == (
        "2b705a2083f499e7d945543f9edb8fff615136f4c6ae752066159e927f7178c8")
    kg, uri = derive_view(world, ViewConfig(
        name="WD", schema_naming="numeric", value_noise=0.65, attr_keep=0.8,
        drop_descriptions=True, numeric_style="decimal", seed=7))
    assert _view_digest(kg, uri) == (
        "16969bc13b4f784df0263de8b4b2939746734b349b47eb4f62e78dc54ff04dc0")
    pair = source_pair("EN-FR", n_entities=120, seed=2)
    assert _pair_digest(pair) == (
        "5d9016307f5f024ee0380fb38dcc46c325497d1cf96fe8ca1ce9e38215085c64")
    assert "corruption" not in pair.metadata


def test_corrupt_pair_zero_rates_is_identity():
    pair = source_pair("EN-FR", n_entities=100, seed=0)
    assert corrupt_pair(pair) is pair
    assert dangling_sources(pair) == []


# ---------------------------------------------------------------------------
# corrupt_pair: invariants + determinism
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def corrupted():
    return benchmark_pair("EN-FR", size=150, seed=1, method="direct",
                          dangling_rate=0.2, link_noise_rate=0.1,
                          attr_missing_rate=0.3)


def test_corrupt_pair_manifest_and_invariants(corrupted):
    manifest = corrupted.metadata["corruption"]
    assert manifest["schema"] == 1
    assert manifest["rates"] == {"dangling_rate": 0.2,
                                 "link_noise_rate": 0.1,
                                 "attr_missing_rate": 0.3}
    # dangling entities keep their structure but lose their counterpart:
    # they stay in their own KG and leave the alignment entirely
    sources = {a for a, _ in corrupted.alignment}
    targets = {b for _, b in corrupted.alignment}
    assert manifest["dangling1"] and manifest["dangling2"]
    assert not set(manifest["dangling1"]) & sources
    assert not set(manifest["dangling2"]) & targets
    assert set(manifest["dangling1"]) <= set(corrupted.kg1.entities)
    assert set(manifest["dangling2"]) <= set(corrupted.kg2.entities)
    assert dangling_sources(corrupted) == list(manifest["dangling1"])
    # noisy links point at a *wrong* existing entity, never the old one
    assert manifest["noisy_links"]
    rewired = {(r["source"], r["new_target"])
               for r in manifest["noisy_links"]}
    assert rewired <= set(corrupted.alignment)
    for record in manifest["noisy_links"]:
        assert record["new_target"] != record["old_target"]
    assert manifest["attrs_dropped1"] > 0
    # the corrupted pair still satisfies the benchmark invariants
    assert validate_pair(corrupted).ok


def test_corrupt_pair_alignment_stays_one_to_one(corrupted):
    sources = [a for a, _ in corrupted.alignment]
    targets = [b for _, b in corrupted.alignment]
    assert len(sources) == len(set(sources))
    assert len(targets) == len(set(targets))


def test_corrupt_pair_deterministic(corrupted):
    again = benchmark_pair("EN-FR", size=150, seed=1, method="direct",
                           dangling_rate=0.2, link_noise_rate=0.1,
                           attr_missing_rate=0.3)
    assert _pair_digest(corrupted) == _pair_digest(again)
    assert corrupted.metadata["corruption"] == again.metadata["corruption"]


def test_corrupt_pair_validates_rates():
    pair = source_pair("EN-FR", n_entities=100, seed=0)
    with pytest.raises(ValueError, match="dangling_rate"):
        corrupt_pair(pair, dangling_rate=1.0)
    with pytest.raises(ValueError, match="link_noise_rate"):
        corrupt_pair(pair, link_noise_rate=-0.1)


# ---------------------------------------------------------------------------
# the shared helpers
# ---------------------------------------------------------------------------
def test_rewire_links_preserves_one_to_one():
    links = [(f"a{i}", f"b{i}") for i in range(40)]
    rewired, records = rewire_links(links, 0.25, corruption_rng(0, "test"))
    assert len(rewired) == len(links)
    assert len(records) == round(0.25 * len(links))
    assert len({b for _, b in rewired}) == len(rewired)
    changed = {r["source"] for r in records}
    for (a, b), (a2, b2) in zip(links, rewired):
        assert a == a2
        assert (b != b2) == (a in changed)


def test_rewire_links_needs_two_candidates():
    links = [("a0", "b0")]
    rewired, records = rewire_links(links, 0.9, corruption_rng(0, "test"))
    assert rewired == links and records == []


def test_drop_attributes_rate_and_determinism():
    pair = source_pair("EN-FR", n_entities=100, seed=0)
    dropped, n = drop_attributes(pair.kg1, 0.5, corruption_rng(3, "attrs"))
    dropped2, n2 = drop_attributes(pair.kg1, 0.5, corruption_rng(3, "attrs"))
    total = len(pair.kg1.attribute_triples)
    assert n == total - len(dropped.attribute_triples) == n2
    assert dropped.attribute_triples == dropped2.attribute_triples
    assert 0.3 < n / total < 0.7
    assert dropped.relation_triples == pair.kg1.relation_triples


def test_remove_counterparts_orphan_cleanup():
    pair = source_pair("EN-FR", n_entities=100, seed=0)
    links = pair.alignment
    dangling1 = {links[0][0], links[1][0]}
    dangling2 = {links[1][1], links[2][1]}  # links[1] hit from both sides
    kg1, kg2, kept, realised1, realised2 = remove_counterparts(
        pair.kg1, pair.kg2, links, dangling1, dangling2)
    # marked links are gone; deletions may orphan a few more (those turn
    # into extra dangling on the surviving side), never add any back
    assert set(kept) <= set(links[3:])
    # KG1 wins the overlap: links[1] realises as KG1-dangling
    assert links[1][0] in realised1 and links[1][1] not in realised2
    assert links[0][1] not in kg2.entities
    assert links[2][0] not in kg1.entities
    assert realised1 == sorted(realised1)


# ---------------------------------------------------------------------------
# view-level path + io round trip
# ---------------------------------------------------------------------------
def test_view_level_corruption_through_source_pair():
    spec = FamilySpec(
        name="T",
        view1=ViewConfig(name="A", language="en", entity_prefix="a",
                         dangling_rate=0.15, attr_missing_rate=0.4),
        view2=ViewConfig(name="B", language="en", entity_prefix="b",
                         dangling_rate=0.1, link_noise_rate=0.1),
        description="view-level corruption test",
    )
    pair = source_pair(spec, n_entities=150, seed=4)
    manifest = pair.metadata["corruption"]
    assert manifest["dangling1"] and manifest["dangling2"]
    assert manifest["noisy_links"]
    assert manifest["attrs_dropped1"] > 0
    assert validate_pair(pair).ok
    # deterministic end to end
    again = source_pair(spec, n_entities=150, seed=4)
    assert _pair_digest(pair) == _pair_digest(again)


def test_smoke_pair_carries_manifest_and_rates():
    pair = smoke_pair(n_entities=150, seed=0, dangling_rate=0.2)
    manifest = pair.metadata["corruption"]
    n_dangling = len(manifest["dangling1"]) + len(manifest["dangling2"])
    population = len(pair.alignment) + n_dangling
    assert 0.1 < n_dangling / population < 0.3
    assert "corruption" not in smoke_pair(n_entities=150, seed=0).metadata


def test_corruption_manifest_io_round_trip(tmp_path, corrupted):
    save_pair(corrupted, tmp_path / "ds")
    assert (tmp_path / "ds" / "corruption.json").is_file()
    loaded = load_pair(tmp_path / "ds")
    assert loaded.metadata["corruption"] == corrupted.metadata["corruption"]
    assert dangling_sources(loaded) == dangling_sources(corrupted)
    # clean datasets write no sidecar and load with empty metadata
    clean = source_pair("EN-FR", n_entities=100, seed=0)
    save_pair(clean, tmp_path / "clean")
    assert not (tmp_path / "clean" / "corruption.json").exists()
    assert "corruption" not in load_pair(tmp_path / "clean").metadata


def test_corruption_rng_streams_are_independent():
    a = corruption_rng(0, "dangling")
    b = corruption_rng(0, "link-noise")
    assert not np.allclose(a.random(8), b.random(8))
    c, d = corruption_rng(5, "x"), corruption_rng(5, "x")
    assert np.array_equal(c.random(8), d.random(8))
