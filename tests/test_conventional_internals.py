"""Unit tests for PARIS/LogMap internals (the component level)."""

import pytest

from repro.conventional import LogMap, LogMapConfig, Paris
from repro.kg import KGPair, KnowledgeGraph


def _pair(attr1, attr2, rel1=(), rel2=()):
    return KGPair(
        kg1=KnowledgeGraph(list(rel1), list(attr1), name="K1"),
        kg2=KnowledgeGraph(list(rel2), list(attr2), name="K2"),
        alignment=[],
    )


# ---------------------------------------------------------------------------
# PARIS internals
# ---------------------------------------------------------------------------
def test_paris_literal_scores_use_inverse_functionality():
    """A match on a key-like attribute outweighs one on a shared value."""
    pair = _pair(
        attr1=[("a1", "key", "K1-unique"), ("a1", "type", "city"),
               ("a2", "key", "K2-unique"), ("a2", "type", "city")],
        attr2=[("b1", "key", "K1-unique"), ("b1", "type", "city"),
               ("b2", "type", "city")],
    )
    paris = Paris()
    values1 = paris._entity_values(pair.kg1, "en")
    values2 = paris._entity_values(pair.kg2, "en")
    ifun1 = paris._inverse_functionality(pair.kg1, "en")
    ifun2 = paris._inverse_functionality(pair.kg2, "en")
    scores = paris._literal_scores(values1, values2, ifun1, ifun2)
    assert scores[("a1", "b1")] > scores[("a2", "b2")]


def test_paris_blocking_skips_huge_value_groups():
    # 50 entities share one value: above max_block, no evidence
    attr1 = [(f"a{i}", "p", "common") for i in range(50)]
    attr2 = [(f"b{i}", "q", "common") for i in range(50)]
    result = Paris().align(_pair(attr1, attr2))
    assert result.alignment == []


def test_paris_relation_correspondence_from_matching_endpoints():
    pair = _pair(
        attr1=[("a1", "k", "v1"), ("a2", "k", "v2")],
        attr2=[("b1", "k", "v1"), ("b2", "k", "v2")],
        rel1=[("a1", "r", "a2")],
        rel2=[("b1", "s", "b2")],
    )
    result = Paris().align(pair)
    assert result.relation_correspondence.get(("r", "s"), 0.0) > 0.3
    assert ("a1", "b1") in result.alignment
    assert ("a2", "b2") in result.alignment


def test_paris_reinforcement_recovers_unmatched_neighbor():
    """An entity with no literal overlap is aligned via its neighbor.

    The (r, s) correspondence must first be established by at least one
    edge whose endpoints both matched literally (a1-a2 / b1-b2); the
    propagation then scores the literal-free pair (a4, b4).
    """
    pair = _pair(
        attr1=[("a1", "k", "v1"), ("a2", "k", "v2"), ("a3", "k", "v3")],
        attr2=[("b1", "k", "v1"), ("b2", "k", "v2"), ("b3", "k", "v3")],
        rel1=[("a1", "r", "a2"), ("a3", "r", "a4")],
        rel2=[("b1", "s", "b2"), ("b3", "s", "b4")],
    )
    result = Paris().align(pair)
    assert result.relation_correspondence.get(("r", "s"), 0.0) > 0.0
    # a4/b4 share no literal; only relational propagation can find them
    assert result.scores.get(("a4", "b4"), 0.0) > 0.0


# ---------------------------------------------------------------------------
# LogMap internals
# ---------------------------------------------------------------------------
def test_logmap_property_alignment_by_name():
    pair = _pair(
        attr1=[("a", "population", "1")],
        attr2=[("b", "population", "1")],
    )
    result = LogMap().align(pair)
    assert result.property_alignment == {"population": "population"}


def test_logmap_property_alignment_rejects_dissimilar():
    pair = _pair(
        attr1=[("a", "population", "1")],
        attr2=[("b", "P1082", "1")],
    )
    result = LogMap().align(pair)
    assert result.property_alignment == {}
    assert result.alignment == []


def test_logmap_anchors_require_aligned_property():
    pair = _pair(
        attr1=[("a", "name", "zurich"), ("a", "altitude", "408")],
        attr2=[("b", "name", "zurich"), ("b", "P2044", "408")],
    )
    result = LogMap().align(pair)
    # the name property aligns, altitude/P2044 does not; still anchored
    assert ("a", "b") in result.alignment


def test_logmap_neighbor_bonus_promotes_candidates():
    config = LogMapConfig(candidate_threshold=0.8, neighbor_bonus=0.4)
    pair = _pair(
        attr1=[("a1", "name", "anchor one"), ("a2", "name", "ambiguous"),
               ("a3", "name", "ambiguous")],
        attr2=[("b1", "name", "anchor one"), ("b2", "name", "ambiguous"),
               ("b3", "name", "ambiguous")],
        rel1=[("a1", "r", "a2")],
        rel2=[("b1", "s", "b2")],
    )
    result = LogMap(config).align(pair)
    scores = result.scores
    # a2-b2 is structurally supported by the a1-b1 anchor; a3-b3 is not
    assert scores.get(("a2", "b2"), 0.0) > scores.get(("a3", "b3"), 0.0)


def test_logmap_translation_bridges_languages():
    from repro.text import pseudo_translate

    pair = KGPair(
        kg1=KnowledgeGraph([], [("a", "name", "everest mountain")]),
        kg2=KnowledgeGraph(
            [], [("b", pseudo_translate("name", "fr"),
                  pseudo_translate("everest mountain", "fr"))]
        ),
        alignment=[],
        metadata={"lang1": "en", "lang2": "fr"},
    )
    result = LogMap().align(pair)
    assert ("a", "b") in result.alignment
