"""Cross-module property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    csls,
    greedy_alignment,
    hungarian_alignment,
    rank_metrics,
    stable_marriage,
)
from repro.kg import KGPair, KnowledgeGraph, degree_distribution, js_divergence

ENT = st.integers(min_value=0, max_value=14).map(lambda i: f"e{i}")
REL = st.sampled_from(["r1", "r2", "r3"])
TRIPLES = st.lists(st.tuples(ENT, REL, ENT), min_size=1, max_size=40)


# ---------------------------------------------------------------------------
# KnowledgeGraph invariants
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(triples=TRIPLES)
def test_degree_sum_equals_twice_triples(triples):
    kg = KnowledgeGraph(triples)
    assert sum(kg.degrees().values()) == 2 * len(kg.relation_triples)


@settings(max_examples=40, deadline=None)
@given(triples=TRIPLES)
def test_filtered_is_monotone(triples):
    kg = KnowledgeGraph(triples)
    entities = sorted(kg.entities)
    subset = set(entities[: len(entities) // 2])
    sub = kg.filtered(subset)
    assert sub.entities <= subset
    assert set(sub.relation_triples) <= set(kg.relation_triples)


@settings(max_examples=40, deadline=None)
@given(triples=TRIPLES)
def test_degree_distribution_is_probability(triples):
    kg = KnowledgeGraph(triples)
    dist = degree_distribution(kg)
    assert sum(dist.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in dist.values())


@settings(max_examples=30, deadline=None)
@given(triples=TRIPLES, other=TRIPLES)
def test_js_divergence_identity_of_indiscernibles(triples, other):
    p = degree_distribution(KnowledgeGraph(triples))
    q = degree_distribution(KnowledgeGraph(other))
    assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
    assert js_divergence(p, q) >= -1e-12


# ---------------------------------------------------------------------------
# alignment-strategy invariants
# ---------------------------------------------------------------------------
SQUARE = st.integers(min_value=2, max_value=12)


@settings(max_examples=40, deadline=None)
@given(n=SQUARE, seed=st.integers(0, 10_000))
def test_hungarian_total_at_least_stable_marriage(n, seed):
    sim = np.random.default_rng(seed).normal(size=(n, n))
    hungarian_total = sim[np.arange(n), hungarian_alignment(sim)].sum()
    sm = stable_marriage(sim)
    sm_total = sim[np.arange(n), sm].sum()
    assert hungarian_total >= sm_total - 1e-9


@settings(max_examples=40, deadline=None)
@given(n=SQUARE, seed=st.integers(0, 10_000))
def test_greedy_rowwise_dominates_any_assignment(n, seed):
    sim = np.random.default_rng(seed).normal(size=(n, n))
    greedy = greedy_alignment(sim)
    hungarian = hungarian_alignment(sim)
    row_scores_greedy = sim[np.arange(n), greedy]
    row_scores_hungarian = sim[np.arange(n), hungarian]
    # per-row, greedy picks the max: no assignment can beat it row-wise
    assert np.all(row_scores_greedy >= row_scores_hungarian - 1e-12)


@settings(max_examples=40, deadline=None)
@given(n=SQUARE, m=SQUARE, seed=st.integers(0, 10_000))
def test_stable_marriage_matching_is_injective(n, m, seed):
    sim = np.random.default_rng(seed).normal(size=(n, m))
    match = stable_marriage(sim)
    matched = match[match >= 0]
    assert len(set(matched.tolist())) == len(matched)
    assert len(matched) == min(n, m)


@settings(max_examples=30, deadline=None)
@given(n=SQUARE, seed=st.integers(0, 10_000), k=st.integers(1, 5))
def test_csls_preserves_shape_and_rowmax_shift_invariance(n, seed, k):
    sim = np.random.default_rng(seed).normal(size=(n, n))
    adjusted = csls(sim, k=k)
    assert adjusted.shape == sim.shape
    # adding a constant to the whole matrix shifts CSLS by nothing
    shifted = csls(sim + 3.0, k=k)
    np.testing.assert_allclose(shifted, adjusted, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(n=SQUARE, seed=st.integers(0, 10_000))
def test_rank_metrics_consistency(n, seed):
    """MRR <= Hits@1 never; Hits monotone in m; MR >= 1."""
    sim = np.random.default_rng(seed).normal(size=(n, n))
    metrics = rank_metrics(sim, np.arange(n), hits_at=(1, 3, 5))
    assert metrics.hits_at(1) <= metrics.hits_at(3) <= metrics.hits_at(5)
    assert metrics.mr >= 1.0
    assert metrics.hits_at(1) <= metrics.mrr <= 1.0


# ---------------------------------------------------------------------------
# KGPair invariants
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(triples=TRIPLES, seed=st.integers(0, 100))
def test_splits_partition_alignment(triples, seed):
    kg1 = KnowledgeGraph(triples, name="K1")
    kg2 = KnowledgeGraph(
        [(f"x{h}", r, f"x{t}") for h, r, t in triples], name="K2"
    )
    alignment = [(e, f"x{e}") for e in sorted(kg1.entities)]
    pair = KGPair(kg1=kg1, kg2=kg2, alignment=alignment)
    if len(alignment) < 10:
        return
    split = pair.split(seed=seed)
    combined = split.train + split.valid + split.test
    assert sorted(combined) == sorted(alignment)
