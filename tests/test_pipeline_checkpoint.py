"""Tests for embedding snapshots (save/load trained embeddings)."""

import numpy as np
import pytest

from repro.approaches import get_approach
from repro.pipeline import EmbeddingSnapshot, load_snapshot, save_snapshot


@pytest.fixture(scope="module")
def snapshot_setup():
    from repro.approaches import ApproachConfig
    from repro.datagen import benchmark_pair

    pair = benchmark_pair("EN-FR", size=150, method="direct", seed=0)
    split = pair.split(seed=0)
    approach = get_approach("BootEA", ApproachConfig(dim=16, epochs=10,
                                                     valid_every=5))
    approach.fit(pair, split)
    snapshot = EmbeddingSnapshot.from_approach(approach, split.test)
    return approach, split, snapshot


def test_snapshot_matches_approach_metrics(snapshot_setup):
    approach, split, snapshot = snapshot_setup
    original = approach.evaluate(split.test, hits_at=(1, 5))
    frozen = snapshot.evaluate(split.test, hits_at=(1, 5))
    assert frozen.hits_at(1) == pytest.approx(original.hits_at(1))
    assert frozen.mrr == pytest.approx(original.mrr)


def test_snapshot_predict_matches(snapshot_setup):
    approach, split, snapshot = snapshot_setup
    assert snapshot.predict(split.test) == approach.predict(split.test)


def test_snapshot_roundtrip(snapshot_setup, tmp_path):
    _, split, snapshot = snapshot_setup
    path = tmp_path / "emb.npz"
    save_snapshot(snapshot, path)
    loaded = load_snapshot(path)
    assert loaded.name == snapshot.name
    assert loaded.metric == snapshot.metric
    np.testing.assert_allclose(loaded.source_matrix, snapshot.source_matrix)
    before = snapshot.evaluate(split.test, hits_at=(1,)).hits_at(1)
    after = loaded.evaluate(split.test, hits_at=(1,)).hits_at(1)
    assert before == pytest.approx(after)


def test_snapshot_csls_and_strategies(snapshot_setup):
    _, split, snapshot = snapshot_setup
    plain = snapshot.evaluate(split.test, hits_at=(1,))
    scaled = snapshot.evaluate(split.test, hits_at=(1,), csls_k=5)
    assert np.isfinite(scaled.mr)
    sm = snapshot.predict(split.test, strategy="stable_marriage")
    rights = [b for _, b in sm]
    assert len(rights) == len(set(rights))
    del plain


def test_snapshot_validates_shapes():
    with pytest.raises(ValueError):
        EmbeddingSnapshot(["a"], np.zeros((2, 3)), ["b"], np.zeros((1, 3)))
    with pytest.raises(ValueError):
        EmbeddingSnapshot(["a"], np.zeros((1, 3)), ["b", "c"], np.zeros((1, 3)))
