"""Tests for embedding snapshots (save/load trained embeddings)."""

import numpy as np
import pytest

from repro.approaches import get_approach
from repro.pipeline import EmbeddingSnapshot, load_snapshot, save_snapshot


@pytest.fixture(scope="module")
def snapshot_setup():
    from repro.approaches import ApproachConfig
    from repro.datagen import benchmark_pair

    pair = benchmark_pair("EN-FR", size=150, method="direct", seed=0)
    split = pair.split(seed=0)
    approach = get_approach("BootEA", ApproachConfig(dim=16, epochs=10,
                                                     valid_every=5))
    approach.fit(pair, split)
    snapshot = EmbeddingSnapshot.from_approach(approach, split.test)
    return approach, split, snapshot


def test_snapshot_matches_approach_metrics(snapshot_setup):
    approach, split, snapshot = snapshot_setup
    original = approach.evaluate(split.test, hits_at=(1, 5))
    frozen = snapshot.evaluate(split.test, hits_at=(1, 5))
    assert frozen.hits_at(1) == pytest.approx(original.hits_at(1))
    assert frozen.mrr == pytest.approx(original.mrr)


def test_snapshot_predict_matches(snapshot_setup):
    approach, split, snapshot = snapshot_setup
    assert snapshot.predict(split.test) == approach.predict(split.test)


def test_snapshot_roundtrip(snapshot_setup, tmp_path):
    _, split, snapshot = snapshot_setup
    path = tmp_path / "emb.npz"
    save_snapshot(snapshot, path)
    loaded = load_snapshot(path)
    assert loaded.name == snapshot.name
    assert loaded.metric == snapshot.metric
    np.testing.assert_allclose(loaded.source_matrix, snapshot.source_matrix)
    before = snapshot.evaluate(split.test, hits_at=(1,)).hits_at(1)
    after = loaded.evaluate(split.test, hits_at=(1,)).hits_at(1)
    assert before == pytest.approx(after)


def test_snapshot_csls_and_strategies(snapshot_setup):
    _, split, snapshot = snapshot_setup
    plain = snapshot.evaluate(split.test, hits_at=(1,))
    scaled = snapshot.evaluate(split.test, hits_at=(1,), csls_k=5)
    assert np.isfinite(scaled.mr)
    sm = snapshot.predict(split.test, strategy="stable_marriage")
    rights = [b for _, b in sm]
    assert len(rights) == len(set(rights))
    del plain


def test_snapshot_validates_shapes():
    with pytest.raises(ValueError):
        EmbeddingSnapshot(["a"], np.zeros((2, 3)), ["b"], np.zeros((1, 3)))
    with pytest.raises(ValueError):
        EmbeddingSnapshot(["a"], np.zeros((1, 3)), ["b", "c"], np.zeros((1, 3)))


# ---------------------------------------------------------------------------
# training-state checkpoints (parameters + optimizer state)
# ---------------------------------------------------------------------------
def _train_steps(parameters, optimizer, steps, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        optimizer.zero_grad()
        for p in parameters:
            p.grad = rng.normal(size=p.shape)
        optimizer.step()


def test_training_state_roundtrip_resumes_exactly(tmp_path):
    from repro.autodiff import Adam, Parameter
    from repro.pipeline import load_training_state, save_training_state

    rng = np.random.default_rng(5)
    params = [Parameter(rng.normal(size=(6, 4)), name="entities"),
              Parameter(rng.normal(size=(3, 4)), name="relations")]
    optimizer = Adam(params, lr=0.05)
    _train_steps(params, optimizer, steps=4, seed=1)

    path = tmp_path / "train_state.npz"
    save_training_state(path, params, optimizer)
    _train_steps(params, optimizer, steps=3, seed=2)
    reference = [p.data.copy() for p in params]

    fresh = [Parameter(np.zeros((6, 4)), name="entities"),
             Parameter(np.zeros((3, 4)), name="relations")]
    fresh_opt = Adam(fresh, lr=0.9)  # lr deliberately wrong; restored from file
    load_training_state(path, fresh, fresh_opt)
    assert fresh_opt.lr == pytest.approx(0.05)
    _train_steps(fresh, fresh_opt, steps=3, seed=2)

    for restored, expected in zip(fresh, reference):
        np.testing.assert_allclose(restored.data, expected, atol=1e-12)


def test_training_state_roundtrips_momentum_underscore_keys(tmp_path):
    """SGD momentum state includes a ``last_step`` key whose underscore
    must survive the npz key encoding."""
    from repro.autodiff import SGD, Parameter
    from repro.pipeline import load_training_state, save_training_state

    params = [Parameter(np.ones((4, 2)))]
    optimizer = SGD(params, lr=0.1, momentum=0.9)
    _train_steps(params, optimizer, steps=2, seed=3)

    path = tmp_path / "sgd_state.npz"
    save_training_state(path, params, optimizer)

    fresh = [Parameter(np.ones((4, 2)))]
    fresh_opt = SGD(fresh, lr=0.1, momentum=0.9)
    load_training_state(path, fresh, fresh_opt)
    restored = fresh_opt.state_dict()["state"][0]
    original = optimizer.state_dict()["state"][0]
    assert set(restored) == set(original)
    for key in original:
        np.testing.assert_allclose(np.asarray(restored[key]),
                                   np.asarray(original[key]), atol=1e-12)


def test_training_state_validates_parameter_count_and_shape(tmp_path):
    from repro.autodiff import Parameter
    from repro.pipeline import load_training_state, save_training_state

    params = [Parameter(np.ones((3, 2)))]
    path = tmp_path / "bad.npz"
    save_training_state(path, params)
    with pytest.raises(ValueError):
        load_training_state(path, [])
    with pytest.raises(ValueError):
        load_training_state(path, [Parameter(np.ones((2, 2)))])


def test_training_state_without_optimizer(tmp_path):
    from repro.autodiff import Parameter
    from repro.pipeline import load_training_state, save_training_state

    params = [Parameter(np.arange(6.0).reshape(3, 2))]
    path = tmp_path / "params_only.npz"
    save_training_state(path, params)
    fresh = [Parameter(np.zeros((3, 2)))]
    load_training_state(path, fresh)
    np.testing.assert_allclose(fresh[0].data, params[0].data)
