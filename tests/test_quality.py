"""Model-quality observability (docs/observability.md).

The contracts under test:

* sampled ranking probes are O(sample²) subset evaluations that agree
  with full ``rank_metrics`` on the subset;
* probes are pure observers — a probed run is bit-identical to a
  probe-off run (they never touch the training RNG) and the overhead
  stays under the 5% budget;
* divergence sentinels abort a doomed run at the epoch boundary well
  before the budget is spent, mark ``TrainingLog.status == "diverged"``
  and stream the reason onto the quality bus;
* monitor state rides in checkpoints, so a crash-resumed run replays
  exactly the same probe history;
* the conformance report's exit-code contract (0 within / 1 drift /
  2 no joinable runs) and the regression gate firing on an injected
  Hits@1 drop.
"""

import dataclasses
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.alignment.evaluate import (
    rank_metrics,
    sample_candidate_indices,
    sampled_rank_metrics,
)
from repro.approaches import ApproachConfig, MTransE, get_approach
from repro.obs import RunLedger, conformance_report, gate, load_reference
from repro.obs.ledger import record_run


# ---------------------------------------------------------------------------
# sampled ranking metrics
# ---------------------------------------------------------------------------
def test_sample_candidate_indices_full_set_when_sample_covers_n():
    np.testing.assert_array_equal(sample_candidate_indices(5, 0),
                                  np.arange(5))
    np.testing.assert_array_equal(sample_candidate_indices(5, 5),
                                  np.arange(5))
    np.testing.assert_array_equal(sample_candidate_indices(5, 99),
                                  np.arange(5))
    assert sample_candidate_indices(0, 4).size == 0


def test_sample_candidate_indices_sorted_unique_and_deterministic():
    rng = np.random.default_rng(7)
    indices = sample_candidate_indices(100, 10, rng)
    assert indices.shape == (10,)
    assert len(set(indices.tolist())) == 10
    assert sorted(indices.tolist()) == indices.tolist()
    again = sample_candidate_indices(100, 10, np.random.default_rng(7))
    np.testing.assert_array_equal(indices, again)


def test_sampled_rank_metrics_matches_full_eval_on_subset():
    pairs = [(f"s{i}", f"t{i}") for i in range(20)]
    table = np.random.default_rng(0).normal(size=(20, 20))

    def similarity_fn(sources, targets):
        rows = [int(s[1:]) for s in sources]
        cols = [int(t[1:]) for t in targets]
        return table[np.ix_(rows, cols)]

    rng = np.random.default_rng(3)
    sampled = sampled_rank_metrics(similarity_fn, pairs, sample=8, rng=rng)
    indices = sample_candidate_indices(20, 8, np.random.default_rng(3))
    full = rank_metrics(table[np.ix_(indices, indices)],
                        np.arange(len(indices)))
    assert sampled.n == 8
    assert sampled.hits == full.hits
    assert sampled.mrr == full.mrr


def test_sampled_rank_metrics_empty_pairs():
    metrics = sampled_rank_metrics(lambda s, t: np.zeros((0, 0)), [],
                                   sample=8)
    assert metrics.n == 0
    assert metrics.hits_at(1) == 0.0
    assert metrics.mrr == 0.0


# ---------------------------------------------------------------------------
# probes inside fit
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny():
    from repro.datagen import benchmark_pair
    pair = benchmark_pair("EN-FR", size=150, method="direct", seed=0)
    split = pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
    return pair, split


BASE = ApproachConfig(dim=16, epochs=10, lr=0.05, batch_size=512,
                      valid_every=0, n_negatives=3, seed=1)


def test_probes_record_curves_and_write_quality_jsonl(tiny, tmp_path):
    pair, split = tiny
    config = dataclasses.replace(BASE, probe_every=5, probe_sample=32)
    approach = MTransE(config)
    log = approach.fit(pair, split,
                       quality_path=tmp_path / "quality.jsonl")
    assert [p["epoch"] for p in log.probes] == [5, 10]
    for probe in log.probes:
        for key in ("hits_at_1", "hits_at_5", "hits_at_10", "mrr",
                    "norm_mean", "drift", "collapse_ratio",
                    "grad_norm_ewma", "grad_nan", "grad_inf"):
            assert key in probe
        assert 0.0 <= probe["hits_at_1"] <= 1.0
        assert 0 < probe["n"] <= 32
    records = [json.loads(line) for line in
               (tmp_path / "quality.jsonl").read_text().splitlines()]
    assert [r["epoch"] for r in records] == [5, 10]
    assert all(r["type"] == "probe" for r in records)
    assert all(r["approach"] == "MTransE" for r in records)


def test_probed_run_is_bit_identical_to_probe_off(tiny, tmp_path):
    """Probes observe: same seeds, same data order, same final params."""
    pair, split = tiny
    plain = MTransE(BASE)
    plain.fit(pair, split)
    probed = MTransE(dataclasses.replace(BASE, probe_every=5,
                                         probe_sample=32))
    log = probed.fit(pair, split, quality_path=tmp_path / "q.jsonl")
    assert log.probes
    for got, expected in zip(probed._parameters(), plain._parameters()):
        np.testing.assert_array_equal(got.data, expected.data)


def test_probe_overhead_under_budget(tiny, tmp_path):
    """probe_every=5 must cost < 5% of training wall time."""
    pair, split = tiny
    config = dataclasses.replace(BASE, epochs=20, probe_every=5,
                                 probe_sample=64)
    approach = MTransE(config)
    log = approach.fit(pair, split)
    assert len(log.probes) == 4
    assert log.train_seconds > 0
    assert log.probe_seconds < 0.05 * log.train_seconds, (
        f"probes cost {log.probe_seconds / log.train_seconds:.1%} "
        f"of training time")


# ---------------------------------------------------------------------------
# divergence sentinels
# ---------------------------------------------------------------------------
def test_sentinel_aborts_diverging_run_before_half_budget(tiny, tmp_path):
    pair, split = tiny
    config = dataclasses.replace(BASE, optimizer="sgd", lr=1e4, epochs=40,
                                 probe_every=2, probe_sample=32,
                                 sentinel=True)
    approach = MTransE(config)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        log = approach.fit(pair, split,
                           quality_path=tmp_path / "quality.jsonl")
    assert log.status == "diverged"
    assert log.diverged_reason
    assert log.epochs_run < 0.5 * config.epochs, (
        f"sentinel let the run burn {log.epochs_run}/{config.epochs} "
        f"epochs before aborting")
    records = [json.loads(line) for line in
               (tmp_path / "quality.jsonl").read_text().splitlines()]
    sentinels = [r for r in records if r["type"] == "sentinel"]
    assert len(sentinels) == 1
    assert sentinels[0]["reason"] == log.diverged_reason


def test_sentinel_quiet_on_healthy_run(tiny):
    pair, split = tiny
    config = dataclasses.replace(BASE, sentinel=True, probe_every=5,
                                 probe_sample=32)
    log = MTransE(config).fit(pair, split)
    assert log.status == "completed"
    assert log.diverged_reason == ""
    assert log.epochs_run == config.epochs


class _StubApproach:
    """A frozen approach the monitor can probe: similarity comes from a
    fixed table, so probe trajectories are fully scripted."""

    def __init__(self, config, n=8, invert=False):
        from types import SimpleNamespace
        self.config = config
        self.log = SimpleNamespace(probes=[])
        self.info = SimpleNamespace(name="Stub", metric="cosine")
        self.invert = invert
        rng = np.random.default_rng(0)
        self._emb = {}
        for i in range(n):
            vec = rng.normal(size=4)
            self._emb[f"s{i}"] = vec
            self._emb[f"t{i}"] = vec + rng.normal(scale=0.01, size=4)

    def _parameters(self):
        return []

    def _matrix(self, names):
        return np.stack([self._emb[name] for name in names])

    _source_matrix = _matrix
    _target_matrix = _matrix

    def similarity_between(self, sources, targets):
        sim = self._matrix(sources) @ self._matrix(targets).T
        return -sim if self.invert else sim


def test_stagnation_sentinel_with_patience():
    """Frozen embeddings ⇒ identical probes ⇒ the patience rule trips."""
    from repro.obs.quality import QualityMonitor
    config = ApproachConfig(probe_every=1, probe_sample=0, sentinel=True,
                            sentinel_patience=3, seed=0)
    approach = _StubApproach(config)
    pairs = [(f"s{i}", f"t{i}") for i in range(8)]
    monitor = QualityMonitor(approach, pairs)
    reasons = [monitor.observe(epoch, 1.0) for epoch in range(1, 5)]
    assert reasons[:3] == [None, None, None]
    assert reasons[3] and "stagnation" in reasons[3]


def test_hits_regression_sentinel():
    """A collapse below (1 - sentinel_hits_drop) × best Hits@1 trips."""
    from repro.obs.quality import QualityMonitor
    config = ApproachConfig(probe_every=1, probe_sample=0, sentinel=True,
                            sentinel_hits_drop=0.5, seed=0)
    approach = _StubApproach(config)
    pairs = [(f"s{i}", f"t{i}") for i in range(8)]
    monitor = QualityMonitor(approach, pairs)
    for epoch in range(1, 4):
        assert monitor.observe(epoch, 1.0) is None
    assert monitor.best_hits1 and monitor.best_hits1 > 0.5
    approach.invert = True  # gold pairs become the *worst* candidates
    reason = monitor.observe(4, 1.0)
    assert reason and "regression" in reason


# ---------------------------------------------------------------------------
# crash/resume: probe histories replay exactly
# ---------------------------------------------------------------------------
def test_resumed_run_replays_identical_probe_history(tiny, tmp_path):
    pair, split = tiny
    config = dataclasses.replace(BASE, probe_every=2, probe_sample=32)

    uninterrupted = MTransE(config)
    reference = uninterrupted.fit(pair, split)

    crashed = MTransE(config)
    with faults.inject("epoch.end:nth=5:mode=raise"):
        with pytest.raises(faults.InjectedFault):
            crashed.fit(pair, split, checkpoint_dir=tmp_path,
                        checkpoint_every=1)
    resumed = MTransE(config)
    log = resumed.fit(pair, split, checkpoint_dir=tmp_path,
                      checkpoint_every=1, resume_from=True)
    assert log.status == "resumed"
    for got, expected in zip(resumed._parameters(),
                             uninterrupted._parameters()):
        np.testing.assert_array_equal(got.data, expected.data)
    # drift depends on the previous probe's sampled matrix, so equality
    # here proves the monitor state really rode in the checkpoint
    assert log.probes == reference.probes


# ---------------------------------------------------------------------------
# paper conformance
# ---------------------------------------------------------------------------
def _cv_record(approach="MTransE", dataset="EN-FR-150-V1", run_id="r1",
               **scalars):
    return {
        "run_id": run_id,
        "name": f"cv/{approach}/{dataset}",
        "kind": "cv",
        "config": {"approach": approach, "dataset": {"family": dataset}},
        "scalars": scalars,
    }


REFERENCE = {
    "default_rel_tolerance": 0.15,
    "entries": [
        {"approach": "MTransE", "dataset": "EN-FR",
         "metrics": {"hits_at_1": 0.247, "mrr": 0.351}},
    ],
}


def test_conformance_within_tolerance_exit_0():
    records = [_cv_record(hits_at_1=0.25, mrr=0.36)]
    report = conformance_report(records, REFERENCE)
    assert report.status == "within"
    assert report.exit_code == 0
    assert len(report.rows) == 2
    assert all(row.within for row in report.rows)


def test_conformance_drift_exit_1():
    records = [_cv_record(hits_at_1=0.05, mrr=0.36)]
    report = conformance_report(records, REFERENCE)
    assert report.status == "drift"
    assert report.exit_code == 1
    drifted = report.drifted
    assert [row.metric for row in drifted] == ["hits_at_1"]
    assert drifted[0].rel_delta < -0.5
    assert "DRIFT" in report.format()


def test_conformance_no_joinable_runs_exit_2():
    report = conformance_report([], REFERENCE)
    assert report.status == "no-runs"
    assert report.exit_code == 2
    # a record on a different dataset family doesn't join either
    report = conformance_report(
        [_cv_record(dataset="D-Y-150-V1", hits_at_1=0.25)], REFERENCE)
    assert report.exit_code == 2
    assert report.unmatched == ["MTransE/EN-FR"]


def test_conformance_latest_matching_record_wins():
    records = [_cv_record(run_id="old", hits_at_1=0.05),
               _cv_record(run_id="new", hits_at_1=0.25, mrr=0.36)]
    report = conformance_report(records, REFERENCE)
    assert report.status == "within"


def test_checked_in_reference_tables_load():
    reference = load_reference(
        Path(__file__).resolve().parents[1]
        / "benchmarks" / "reference" / "paper_tables.json")
    assert reference["default_rel_tolerance"] > 0
    entries = reference["entries"]
    assert {e["approach"] for e in entries} >= {"MTransE", "BootEA",
                                               "GCNAlign", "RDGCN"}
    for entry in entries:
        assert 0.0 < entry["metrics"]["hits_at_1"] <= 1.0


# ---------------------------------------------------------------------------
# the quality gate
# ---------------------------------------------------------------------------
def test_gate_fails_on_injected_hits1_drop(tmp_path):
    """A 30% Hits@1 drop must fail the gate (rel_threshold is 10%)."""
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    for _ in range(6):
        record_run("cv", "cv/MTransE/EN-FR-150-V1",
                   config={"approach": "MTransE", "dataset": "EN-FR"},
                   scalars={"hits_at_1": 0.50, "probe_hits_at_1": 0.45},
                   ledger=ledger)
    clean = gate(ledger, metrics=["hits_at_1", "probe_hits_at_1"])
    assert clean.status == "ok", clean.format()

    dropped = gate(ledger, metrics=["hits_at_1", "probe_hits_at_1"],
                   inject_factor=1.43)
    assert dropped.status == "regressed", dropped.format()
    assert dropped.exit_code == 1
    assert {v.metric for v in dropped.regressions} == \
        {"hits_at_1", "probe_hits_at_1"}


def test_cv_records_probe_hits_scalar(tiny, tmp_path, monkeypatch):
    """cross_validate aggregates the last probe's Hits@1 into its ledger
    scalars, which is what the perf gate judges."""
    from repro.pipeline import cross_validate
    pair, _ = tiny
    monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "ledger.jsonl"))
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    config = dataclasses.replace(BASE, epochs=4, probe_every=2,
                                 probe_sample=32)
    result = cross_validate(lambda: get_approach("MTransE", config), pair,
                            n_folds=2, seed=0)
    assert result.status in ("completed", "resumed")
    assert all(fold.log.probes for fold in result.folds)
    records = ledger.records()
    assert records
    scalars = records[-1]["scalars"]
    assert "probe_hits_at_1" in scalars
    assert 0.0 <= scalars["probe_hits_at_1"] <= 1.0
