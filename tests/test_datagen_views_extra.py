"""Extra tests for view derivation internals and newer heterogeneity knobs."""

import numpy as np
import pytest

from repro.datagen import ViewConfig, WorldConfig, derive_view, generate_world
from repro.datagen.views import _perturb_value, _rewrite_description
from repro.text import LANGUAGES


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(n_entities=300, seed=4))


def test_numeric_style_decimal_rewrites_numbers(world):
    plain, _ = derive_view(world, ViewConfig(name="P", numeric_style="plain",
                                             value_noise=0.0, attr_keep=1.0))
    decimal, _ = derive_view(world, ViewConfig(name="D", numeric_style="decimal",
                                               value_noise=0.0, attr_keep=1.0))
    plain_numeric = {v for _, _, v in plain.attribute_triples if v.isdigit()}
    assert plain_numeric, "the world should contain numeric literals"
    decimal_values = {v for _, _, v in decimal.attribute_triples}
    assert not any(v.isdigit() for v in decimal_values)
    assert any(v.endswith(".0") for v in decimal_values)


def test_numeric_style_breaks_exact_matching(world):
    """The D-W heterogeneity: the same fact no longer string-matches."""
    view_a, map_a = derive_view(world, ViewConfig(name="A", value_noise=0.0,
                                                  attr_keep=1.0, entity_keep=1.0))
    view_b, map_b = derive_view(world, ViewConfig(name="B", value_noise=0.0,
                                                  attr_keep=1.0, entity_keep=1.0,
                                                  numeric_style="decimal", seed=1))
    values_a = {v for _, _, v in view_a.attribute_triples if v.replace(".", "").isdigit()}
    values_b = {v for _, _, v in view_b.attribute_triples if v.replace(".", "").isdigit()}
    assert values_a.isdisjoint(values_b)


def test_merged_schema_names_stay_wordlike(world):
    kg, _ = derive_view(world, ViewConfig(name="YG", relation_merge=5))
    for relation in kg.relations:
        assert not relation.startswith("P"), "merged names must not be numeric"
        assert any(c.isalpha() for c in relation)


def test_merged_schema_numeric_when_requested(world):
    kg, _ = derive_view(world, ViewConfig(name="WD", relation_merge=5,
                                          schema_naming="numeric"))
    assert all(r.startswith("P") for r in kg.relations)


def test_translate_schema_names_are_translatable(world):
    from repro.text import translate_back

    kg_en, _ = derive_view(world, ViewConfig(name="EN", language="en"))
    kg_fr, _ = derive_view(world, ViewConfig(name="FR", language="fr"))
    # every FR relation maps back to an EN relation via un-translation
    en_relations = set(kg_en.relations)
    recovered = {translate_back(r, "fr") for r in kg_fr.relations}
    assert recovered <= en_relations | recovered  # sanity: no crash
    assert len(recovered & en_relations) >= 0.8 * len(kg_fr.relations)


def test_perturb_value_changes_tokens():
    rng = np.random.default_rng(0)
    original = "alpha beta gamma"
    changed = sum(
        1 for _ in range(50) if _perturb_value(original, rng) != original
    )
    assert changed > 40


def test_perturb_value_single_token_safe():
    rng = np.random.default_rng(1)
    for _ in range(20):
        result = _perturb_value("single", rng)
        assert result  # never empty


def test_rewrite_description_keeps_some_tokens():
    rng = np.random.default_rng(2)
    original = "one two three four five six seven eight"
    rewritten = _rewrite_description(original, rng)
    overlap = set(rewritten.split()) & set(original.split())
    assert overlap, "rewrite must stay related to the original"
    assert rewritten != original or True


def test_language_inverse_substitution():
    for language in LANGUAGES.values():
        inverse = language.inverse_substitution()
        for src, dst in language.substitution.items():
            assert inverse[dst] == src
