"""Crash-replay suite: injected crashes, then resume, then equivalence.

The contract under test (docs/robustness.md): for every injected kill
site, (a) no torn or corrupt *readable* artifact survives the crash,
and (b) a resumed run finishes with exactly the embeddings and metrics
the uninterrupted run would have produced.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.approaches import (
    ApproachConfig,
    CheckpointCorruption,
    MTransE,
    TrainingCheckpointer,
)
from repro.datagen import benchmark_pair
from repro.faults import InjectedFault
from repro.obs.ledger import RunLedger
from repro.pipeline.checkpoint import (
    EmbeddingSnapshot,
    load_snapshot,
    save_snapshot,
)
from repro.pipeline.runner import cross_validate

REPO = Path(__file__).resolve().parents[1]
EPOCHS = 5


@pytest.fixture(scope="module")
def tiny():
    pair = benchmark_pair("EN-FR", size=120, method="direct", seed=0)
    split = pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
    return pair, split


def _factory():
    return MTransE(ApproachConfig(epochs=EPOCHS, dim=8, seed=1,
                                  valid_every=0))


def _fit_checkpointed(pair, split, directory, resume=False):
    approach = _factory()
    log = approach.fit(pair, split, checkpoint_dir=directory,
                       checkpoint_every=1, resume_from=resume)
    return approach, log


@pytest.fixture(scope="module")
def uninterrupted(tiny):
    pair, split = tiny
    approach = _factory()
    approach.fit(pair, split)
    return ([p.data.copy() for p in approach._parameters()],
            approach.evaluate(split.test))


def _assert_equivalent(approach, uninterrupted, split):
    reference_params, reference_metrics = uninterrupted
    for got, expected in zip(approach._parameters(), reference_params):
        # stronger than the required allclose(atol=1e-12): bit-for-bit
        np.testing.assert_array_equal(got.data, expected)
    metrics = approach.evaluate(split.test)
    assert metrics.hits_at(1) == reference_metrics.hits_at(1)
    assert metrics.mrr == reference_metrics.mrr


# ------------------------------------------------------------------ site 1
def test_crash_at_epoch_boundary_then_resume(tiny, uninterrupted, tmp_path):
    pair, split = tiny
    with faults.inject("epoch.end:nth=2:mode=raise"):
        with pytest.raises(InjectedFault):
            _fit_checkpointed(pair, split, tmp_path)
    approach, log = _fit_checkpointed(pair, split, tmp_path, resume=True)
    assert log.status == "resumed"
    assert log.resumed_from_epoch >= 1
    assert log.epochs_run == EPOCHS
    _assert_equivalent(approach, uninterrupted, split)


# ------------------------------------------------------------------ site 2
def test_crash_mid_checkpoint_write_then_resume(tiny, uninterrupted,
                                                tmp_path):
    """Tear the epoch-2 state file mid-write: the manifest must still
    reference the complete epoch-1 checkpoint, and resuming from it must
    reproduce the uninterrupted run exactly."""
    pair, split = tiny
    with faults.inject("checkpoint.write:nth=2:mode=partial"):
        with pytest.raises(InjectedFault):
            _fit_checkpointed(pair, split, tmp_path)
    # the surviving checkpoint is complete and verifies
    checkpointer = TrainingCheckpointer(tmp_path)
    manifest = checkpointer.manifest()  # raises on any torn artifact
    assert manifest["epoch"] == 1
    # the torn write only ever touched a *.tmp sibling
    assert (tmp_path / "state_ep000002.npz.tmp").exists()
    assert not (tmp_path / "state_ep000002.npz").exists()
    approach, log = _fit_checkpointed(pair, split, tmp_path, resume=True)
    assert log.status == "resumed"
    _assert_equivalent(approach, uninterrupted, split)


def test_crash_mid_manifest_write_then_resume(tiny, uninterrupted, tmp_path):
    pair, split = tiny
    with faults.inject("checkpoint.manifest:nth=2:mode=partial"):
        with pytest.raises(InjectedFault):
            _fit_checkpointed(pair, split, tmp_path)
    manifest = TrainingCheckpointer(tmp_path).manifest()
    assert manifest["epoch"] == 1  # previous complete manifest survives
    approach, log = _fit_checkpointed(pair, split, tmp_path, resume=True)
    assert log.status == "resumed"
    _assert_equivalent(approach, uninterrupted, split)


def test_corrupt_checkpoint_refuses_to_resume(tiny, tmp_path):
    pair, split = tiny
    with faults.inject("epoch.end:nth=2:mode=raise"):
        with pytest.raises(InjectedFault):
            _fit_checkpointed(pair, split, tmp_path)
    state = sorted(tmp_path.glob("state_ep*.npz"))[-1]
    raw = bytearray(state.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    state.write_bytes(bytes(raw))
    with pytest.raises(CheckpointCorruption):
        _fit_checkpointed(pair, split, tmp_path, resume=True)


# ------------------------------------------------------------------ site 3
def test_crash_mid_ledger_append_leaves_skippable_line(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    record = {"schema_version": 1, "run_id": "r1", "ts_utc": "t",
              "kind": "train", "name": "a", "fingerprint": "f" * 16,
              "git": {}, "host": {}, "config": {}, "scalars": {},
              "metrics": {}}
    ledger.append(dict(record, run_id="r0"))
    with faults.inject("ledger.append:nth=1:mode=partial"):
        with pytest.raises(InjectedFault):
            ledger.append(record)
    # the torn trailing line is skipped, never fatal, and appends recover
    records, skipped = ledger.read()
    assert [r["run_id"] for r in records] == ["r0"]
    assert skipped == 1
    ledger.append(dict(record, run_id="r2"))
    records, skipped = ledger.read()
    assert [r["run_id"] for r in records] == ["r0", "r2"]


# ------------------------------------------------------------------ site 4
def test_crash_mid_snapshot_save_preserves_old_file(tmp_path):
    rng = np.random.default_rng(0)
    snapshot = EmbeddingSnapshot(
        ["a", "b"], rng.normal(size=(2, 4)),
        ["x", "y"], rng.normal(size=(2, 4)), name="v1",
    )
    path = tmp_path / "snap.npz"
    save_snapshot(snapshot, path)
    replacement = EmbeddingSnapshot(
        ["a", "b"], rng.normal(size=(2, 4)),
        ["x", "y"], rng.normal(size=(2, 4)), name="v2",
    )
    with faults.inject("snapshot.save:nth=1:mode=partial"):
        with pytest.raises(InjectedFault):
            save_snapshot(replacement, path)
    # the reader still sees the old complete snapshot, never a torn one
    loaded = load_snapshot(path)
    assert loaded.name == "v1"
    np.testing.assert_array_equal(loaded.source_matrix,
                                  snapshot.source_matrix)


# ------------------------------------------------- real SIGKILL, subprocess
def test_real_kill_and_resume_is_bit_identical(tmp_path):
    """An os._exit(137) at epoch 3 (a genuine dead process, not an
    exception) resumed from its checkpoint must reach the same final
    parameter hash and metrics as a never-interrupted run."""
    def run(*extra, env_faults=None):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_FAULTS", None)
        if env_faults:
            env["REPRO_FAULTS"] = env_faults
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "train", "--size", "100",
             "--dim", "8", "--epochs", "4", *extra],
            env=env, cwd=REPO, capture_output=True, text=True,
        )

    killed = run("--checkpoint-dir", str(tmp_path / "ck"),
                 env_faults="epoch.end:nth=2:mode=kill")
    assert killed.returncode == 137, killed.stderr
    resumed = run("--checkpoint-dir", str(tmp_path / "ck"), "--resume")
    assert resumed.returncode == 0, resumed.stderr
    reference = run()
    assert reference.returncode == 0, reference.stderr

    def digest(output):
        return re.search(r"params_sha256=(\w+)", output).group(1)

    def scores(output):
        return re.search(r"hits@1=\S+ mrr=\S+", output).group(0)

    assert digest(resumed.stdout) == digest(reference.stdout)
    assert scores(resumed.stdout) == scores(reference.stdout)
    assert "status=resumed" in resumed.stdout


# ------------------------------------------------------------- cv + no-op
def test_cross_validate_resumes_completed_folds(tiny, tmp_path):
    pair, _ = tiny
    baseline = cross_validate(_factory, pair, n_folds=2, seed=0)
    with faults.inject(f"epoch.end:nth={EPOCHS + 2}:mode=raise"):
        with pytest.raises(InjectedFault):  # dies inside fold 2
            cross_validate(_factory, pair, n_folds=2, seed=0,
                           checkpoint_dir=tmp_path)
    resumed = cross_validate(_factory, pair, n_folds=2, seed=0,
                             checkpoint_dir=tmp_path)
    assert resumed.status == "resumed"
    assert len(resumed.folds) == 2
    assert resumed.folds[0].approach is None  # restored, not retrained
    for metric in ("hits@1", "mrr"):
        assert resumed.mean_std(metric) == baseline.mean_std(metric)


def test_checkpointing_changes_nothing_about_training(tiny, uninterrupted,
                                                      tmp_path):
    """With no faults armed, a checkpointed fit is bit-identical to a
    plain one — crash safety must not perturb training."""
    pair, split = tiny
    approach, log = _fit_checkpointed(pair, split, tmp_path)
    assert log.status == "completed"
    _assert_equivalent(approach, uninterrupted, split)
