"""Robustness tests for the autodiff engine's lifecycle semantics."""

import numpy as np
import pytest

from repro.autodiff import Adam, Parameter, Tensor


def test_backward_frees_graph():
    """After backward() the graph edges are released (memory hygiene)."""
    a = Tensor([1.0, 2.0], requires_grad=True)
    out = (a * 3.0).sum()
    assert out._parents
    out.backward()
    assert out._backward is None
    assert out._parents == ()


def test_second_backward_accumulates_into_existing_grads():
    """Two independent forward/backward passes accumulate gradients."""
    a = Tensor([2.0], requires_grad=True)
    (a * 3.0).sum().backward()
    (a * 4.0).sum().backward()
    np.testing.assert_allclose(a.grad, [7.0])


def test_gradient_reset_between_steps():
    p = Parameter(np.array([1.0]))
    opt = Adam([p], lr=0.1)
    (p * 2.0).sum().backward()
    first_grad = p.grad.copy()
    opt.step()
    opt.zero_grad()
    assert p.grad is None
    (p * 2.0).sum().backward()
    np.testing.assert_allclose(p.grad, first_grad)


def test_optimizer_state_persists_across_steps():
    """Adam's moments survive between steps (momentum accumulates)."""
    p = Parameter(np.array([10.0]))
    opt = Adam([p], lr=0.1)
    updates = []
    for _ in range(3):
        opt.zero_grad()
        p.grad = np.array([1.0])
        before = p.data.copy()
        opt.step()
        updates.append(float((before - p.data).item()))
    # with constant gradients Adam's step stays roughly lr-sized
    assert all(0.05 < u <= 0.11 for u in updates)


def test_mixed_requires_grad_operands():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=False)
    out = (a * b).sum()
    out.backward()
    np.testing.assert_allclose(a.grad, [3.0, 4.0])
    assert b.grad is None


def test_no_grad_graph_when_no_input_requires():
    a = Tensor([1.0])
    b = Tensor([2.0])
    out = a * b + a
    assert not out.requires_grad
    assert out._backward is None


def test_float_coercion():
    t = Tensor(np.array([3], dtype=np.int64))
    assert t.data.dtype == np.float64
    assert t.item() == 3.0


def test_large_graph_backward_is_iterative():
    """A deep chain must not hit the recursion limit (iterative toposort)."""
    x = Tensor([1.0], requires_grad=True)
    out = x
    for _ in range(5000):
        out = out * 1.0001
    out.sum().backward()
    assert x.grad is not None
    assert np.isfinite(x.grad).all()


def test_parameter_survives_assign_during_training():
    p = Parameter(np.ones(4), name="w")
    opt = Adam([p], lr=0.1)
    p.grad = np.ones(4)
    opt.step()
    p.assign(np.zeros(4))  # e.g. a normalization pass
    p.grad = np.ones(4)
    opt.step()  # must not crash; moments keyed by identity still apply
    assert np.isfinite(p.data).all()


def test_grad_shape_always_matches_parameter():
    p = Parameter(np.ones((3, 4)))
    out = (p.gather(np.array([0, 2])) * 2.0).sum()
    out.backward()
    assert p.grad.shape == (3, 4)
