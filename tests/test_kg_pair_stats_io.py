"""Tests for KGPair, statistics functions and OpenEA-format I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import (
    AlignmentSplit,
    KGPair,
    KnowledgeGraph,
    clustering_coefficient,
    dataset_summary,
    degree_distribution,
    isolated_entity_ratio,
    js_divergence,
    load_pair,
    load_splits,
    save_pair,
    save_splits,
)


def _pair(n_align=20):
    rng = np.random.default_rng(1)
    ents1 = [f"e1_{i}" for i in range(n_align + 5)]
    ents2 = [f"e2_{i}" for i in range(n_align + 5)]
    triples1 = [
        (ents1[rng.integers(len(ents1))], "r", ents1[rng.integers(len(ents1))])
        for _ in range(60)
    ]
    triples2 = [
        (ents2[rng.integers(len(ents2))], "s", ents2[rng.integers(len(ents2))])
        for _ in range(60)
    ]
    attrs1 = [(ents1[i], "name", f"val{i}") for i in range(10)]
    attrs2 = [(ents2[i], "nom", f"val{i}") for i in range(10)]
    alignment = [(ents1[i], ents2[i]) for i in range(n_align)]
    return KGPair(
        kg1=KnowledgeGraph(triples1, attrs1, name="KG1"),
        kg2=KnowledgeGraph(triples2, attrs2, name="KG2"),
        alignment=alignment,
        name="toy",
    )


# ---------------------------------------------------------------------------
# KGPair
# ---------------------------------------------------------------------------
def test_pair_rejects_non_one_to_one():
    kg = KnowledgeGraph([("a", "r", "b")])
    with pytest.raises(ValueError):
        KGPair(kg1=kg, kg2=kg, alignment=[("a", "x"), ("a", "y")])


def test_five_fold_splits_are_disjoint_and_cover():
    pair = _pair()
    splits = pair.five_fold_splits(seed=3)
    assert len(splits) == 5
    train_union = set()
    for split in splits:
        train_set = set(split.train)
        assert train_set.isdisjoint(set(split.valid))
        assert train_set.isdisjoint(set(split.test))
        assert set(split.valid).isdisjoint(set(split.test))
        assert split.total == len(pair.alignment)
        train_union |= train_set
    # the five training folds partition the reference alignment
    assert train_union == set(pair.alignment)


def test_five_fold_ratios_match_paper():
    pair = _pair(n_align=100)
    split = pair.five_fold_splits(seed=0)[0]
    assert len(split.train) == 20
    assert len(split.valid) == 10
    assert len(split.test) == 70


def test_single_split_ratios():
    pair = _pair(n_align=50)
    split = pair.split(train_ratio=0.3, valid_ratio=0.1, seed=5)
    assert len(split.train) == 15
    assert len(split.valid) == 5
    assert len(split.test) == 30


def test_split_rejects_bad_ratios():
    with pytest.raises(ValueError):
        _pair().split(train_ratio=0.8, valid_ratio=0.3)


def test_restricted_to_alignment():
    pair = _pair(n_align=10)
    restricted = pair.restricted_to_alignment()
    keep1 = {a for a, _ in pair.alignment}
    assert restricted.kg1.entities <= keep1
    assert all(
        h in keep1 and t in keep1 for h, _, t in restricted.kg1.relation_triples
    )


def test_alignment_degree_sums_both_sides():
    kg1 = KnowledgeGraph([("a", "r", "b"), ("a", "r", "c")])
    kg2 = KnowledgeGraph([("x", "s", "y")])
    pair = KGPair(kg1=kg1, kg2=kg2, alignment=[("a", "x")])
    assert pair.alignment_degree(("a", "x")) == 2 + 1


def test_feature_masking_views():
    pair = _pair()
    assert pair.without_attributes().kg1.attribute_triples == []
    assert pair.without_relations().kg2.relation_triples == []


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
def test_degree_distribution_sums_to_one():
    kg = KnowledgeGraph([("a", "r", "b"), ("b", "r", "c")])
    dist = degree_distribution(kg)
    assert sum(dist.values()) == pytest.approx(1.0)
    assert dist[1] == pytest.approx(2 / 3)  # a and c
    assert dist[2] == pytest.approx(1 / 3)  # b


def test_degree_distribution_clamps_max():
    kg = KnowledgeGraph([("hub", "r", f"t{i}") for i in range(50)])
    dist = degree_distribution(kg, max_degree=10)
    assert max(dist) == 10


def test_js_divergence_identical_is_zero():
    dist = {1: 0.5, 2: 0.5}
    assert js_divergence(dist, dist) == pytest.approx(0.0)


def test_js_divergence_disjoint_is_log2():
    assert js_divergence({1: 1.0}, {2: 1.0}) == pytest.approx(np.log(2))


def test_js_divergence_symmetric():
    q = {1: 0.7, 2: 0.3}
    p = {1: 0.4, 2: 0.4, 3: 0.2}
    assert js_divergence(q, p) == pytest.approx(js_divergence(p, q))


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8),
    other=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8),
)
def test_js_divergence_bounds_property(weights, other):
    q = {i: w / sum(weights) for i, w in enumerate(weights)}
    p = {i: w / sum(other) for i, w in enumerate(other)}
    value = js_divergence(q, p)
    assert -1e-12 <= value <= np.log(2) + 1e-12


def test_isolated_entity_ratio():
    kg = KnowledgeGraph(
        relation_triples=[("a", "r", "b")],
        attribute_triples=[("c", "x", "1"), ("d", "x", "2")],
    )
    assert isolated_entity_ratio(kg) == pytest.approx(0.5)


def test_clustering_coefficient_triangle():
    kg = KnowledgeGraph([("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a")])
    assert clustering_coefficient(kg) == pytest.approx(1.0)


def test_clustering_coefficient_star_is_zero():
    kg = KnowledgeGraph([("hub", "r", f"t{i}") for i in range(4)])
    assert clustering_coefficient(kg) == pytest.approx(0.0)


def test_clustering_matches_networkx():
    import networkx as nx

    rng = np.random.default_rng(0)
    triples = [
        (f"n{rng.integers(12)}", "r", f"n{rng.integers(12)}") for _ in range(40)
    ]
    kg = KnowledgeGraph(triples)
    graph = nx.Graph()
    graph.add_nodes_from(kg.entities)
    graph.add_edges_from(
        (h, t) for h, _, t in triples if h != t
    )
    expected = nx.average_clustering(graph)
    assert clustering_coefficient(kg) == pytest.approx(expected, abs=1e-9)


def test_dataset_summary_keys():
    summary = dataset_summary(_pair().kg1)
    assert set(summary) == {
        "entities", "relations", "attributes", "rel_triples", "attr_triples",
        "avg_degree",
    }


# ---------------------------------------------------------------------------
# I/O
# ---------------------------------------------------------------------------
def test_pair_roundtrip(tmp_path):
    pair = _pair()
    save_pair(pair, tmp_path / "data")
    loaded = load_pair(tmp_path / "data", name="toy")
    assert loaded.alignment == pair.alignment
    assert sorted(loaded.kg1.relation_triples) == sorted(pair.kg1.relation_triples)
    assert sorted(loaded.kg2.attribute_triples) == sorted(pair.kg2.attribute_triples)
    assert loaded.name == "toy"


def test_splits_roundtrip(tmp_path):
    pair = _pair()
    splits = pair.five_fold_splits(seed=0)
    save_splits(splits, tmp_path)
    loaded = load_splits(tmp_path)
    assert len(loaded) == 5
    for original, read in zip(splits, loaded):
        assert read.train == original.train
        assert read.valid == original.valid
        assert read.test == original.test


def test_read_triples_rejects_malformed(tmp_path):
    bad = tmp_path / "bad"
    bad.write_text("a\tb\n", encoding="utf-8")
    from repro.kg import read_triples

    with pytest.raises(ValueError):
        read_triples(bad)


def test_read_links_skips_blank_lines(tmp_path):
    path = tmp_path / "links"
    path.write_text("a\tb\n\nc\td\n", encoding="utf-8")
    from repro.kg import read_links

    assert read_links(path) == [("a", "b"), ("c", "d")]


def test_alignment_split_total():
    split = AlignmentSplit(train=[("a", "b")], valid=[], test=[("c", "d")])
    assert split.total == 2
