"""Run ledger: record schema, queries, compaction, bench wiring.

Covers the ISSUE acceptance criteria: every traced bench appends
exactly one schema-valid RunRecord, ``repro obs-ledger tail`` renders
it, and registry snapshots survive the cross-process JSON round trip
(`snapshot() -> json -> merge_snapshot()`) RunRecords rely on.
"""

import json
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.obs import MetricsRegistry
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    config_fingerprint,
    default_ledger,
    record_metric_value,
    record_run,
    validate_record,
)

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def make_record(**overrides) -> RunRecord:
    defaults = dict(kind="bench", name="t", config={"x": 1},
                    scalars={"steps_per_second": 100.0})
    defaults.update(overrides)
    return RunRecord(**defaults)


class TestRunRecord:
    def test_schema_valid_and_round_trips(self):
        record = make_record()
        data = validate_record(record.to_dict())
        again = RunRecord.from_dict(json.loads(json.dumps(data)))
        assert again.to_dict() == data
        assert data["schema_version"] == 1
        assert data["git"].keys() == {"sha", "dirty"}
        assert data["host"]["python"]

    def test_fingerprint_depends_on_config_and_bench_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SIZE", raising=False)
        a = config_fingerprint({"approach": "MTransE"})
        assert a == config_fingerprint({"approach": "MTransE"})
        assert a != config_fingerprint({"approach": "BootEA"})
        monkeypatch.setenv("REPRO_BENCH_SIZE", "9999")
        assert a != config_fingerprint({"approach": "MTransE"})

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("run_id"),
        lambda d: d.update(scalars={"bad": "text"}),
        lambda d: d.update(schema_version=99),
        lambda d: d.update(git="deadbeef"),
    ])
    def test_invalid_records_rejected(self, mutate):
        data = make_record().to_dict()
        mutate(data)
        with pytest.raises(ValueError):
            validate_record(data)

    def test_metric_resolution(self):
        registry = MetricsRegistry()
        registry.gauge("train.loss", approach="MTransE").set(0.5)
        registry.counter("serve.queries").inc(7)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        record = make_record(metrics=registry.snapshot()).to_dict()
        assert record_metric_value(record, "steps_per_second") == 100.0
        assert record_metric_value(record, "train.loss") == 0.5
        assert record_metric_value(record, "serve.queries") == 7.0
        assert record_metric_value(record, "lat:count") == 1.0
        assert record_metric_value(record, "lat:mean") == 0.5
        assert record_metric_value(record, "nope") is None


class TestRunLedger:
    def test_append_and_read(self, tmp_path):
        ledger = RunLedger(tmp_path / "sub" / "ledger.jsonl")
        ledger.append(make_record())
        ledger.append(make_record(scalars={"steps_per_second": 90.0}))
        records, skipped = ledger.read()
        assert len(records) == 2 and skipped == 0
        assert len(ledger) == 2

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(make_record())
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
        ledger.append(make_record())
        records, skipped = ledger.read()
        assert len(records) == 2
        assert skipped == 2

    def test_try_append_warns_instead_of_raising(self, tmp_path, capsys):
        target = tmp_path / "blocked"
        target.write_text("i am a file, not a directory")
        ledger = RunLedger(target / "ledger.jsonl")
        assert ledger.try_append(make_record()) is None
        assert "warning" in capsys.readouterr().err

    def test_history_and_baseline(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for value in (100.0, 110.0, 120.0):
            ledger.append(make_record(
                scalars={"steps_per_second": value}))
        other = make_record(config={"x": 2},
                            scalars={"steps_per_second": 1.0})
        ledger.append(other)
        fingerprint = make_record().fingerprint
        series = ledger.history("steps_per_second",
                                fingerprint=fingerprint)
        assert [v for _, v in series] == [100.0, 110.0, 120.0]
        last_id = series[-1][0]["run_id"]
        assert ledger.baseline("steps_per_second", fingerprint, n=2,
                               exclude_run_id=last_id) == [100.0, 110.0]
        # dict and callable `where` filters
        assert len(ledger.history("steps_per_second",
                                  where={"kind": "bench"})) == 4
        assert len(ledger.history("steps_per_second",
                                  where=lambda r: r["config"]["x"] == 2)) == 1

    def test_compact_keeps_trailing_per_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for value in range(10):
            ledger.append(make_record(scalars={"v": float(value)}))
        ledger.append(make_record(config={"x": 2}, scalars={"v": 777.0}))
        kept, dropped = ledger.compact(keep_last=3)
        assert (kept, dropped) == (4, 7)
        values = [v for _, v in ledger.history("v")]
        assert values == [7.0, 8.0, 9.0, 777.0]

    def test_default_ledger_env_gated(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_PATH", raising=False)
        assert default_ledger() is None
        assert record_run("train", "nothing") is None  # silent no-op
        monkeypatch.setenv("REPRO_LEDGER_PATH",
                           str(tmp_path / "ledger.jsonl"))
        assert default_ledger().path == tmp_path / "ledger.jsonl"
        record = record_run("train", "something",
                            scalars={"ok": 1.0, "skipped_nan": float("nan")})
        assert record is not None
        assert record["scalars"] == {"ok": 1.0}
        assert len(RunLedger(tmp_path / "ledger.jsonl")) == 1


class TestSnapshotRoundTrip:
    """Cross-process snapshot()/merge path the RunRecord relies on."""

    def _populated(self, reservoir_size=10_000) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("serve.queries", index="ivf").inc(42)
        registry.gauge("train.loss").set(0.125)
        hist = registry.histogram("serve.latency_seconds",
                                  buckets=(0.001, 0.01, 0.1),
                                  reservoir_size=reservoir_size)
        for i in range(500):
            hist.observe((i % 100) / 1000.0)
        return registry

    def _round_trip(self, registry) -> MetricsRegistry:
        blob = json.dumps(registry.snapshot(include_raw=True),
                          sort_keys=True)
        fresh = MetricsRegistry()
        fresh.merge_snapshot(json.loads(blob))
        return fresh

    def test_counters_gauges_and_percentiles_below_cap(self):
        registry = self._populated()
        merged = self._round_trip(registry)
        assert merged.counter("serve.queries", index="ivf").value == 42
        assert merged.gauge("train.loss").value == 0.125
        original = registry.histogram("serve.latency_seconds",
                                      buckets=(0.001, 0.01, 0.1))
        copy = merged.histogram("serve.latency_seconds",
                                buckets=(0.001, 0.01, 0.1))
        assert copy.count == original.count == 500
        assert copy.sum == pytest.approx(original.sum)
        for q in (50, 95, 99):
            assert copy.percentile(q) == pytest.approx(
                original.percentile(q))
        assert merged.snapshot() == registry.snapshot()

    def test_percentiles_above_reservoir_cap(self):
        registry = self._populated(reservoir_size=64)
        merged = self._round_trip(registry)
        original = registry.histogram("serve.latency_seconds",
                                      buckets=(0.001, 0.01, 0.1),
                                      reservoir_size=64)
        copy = merged.histogram("serve.latency_seconds",
                                buckets=(0.001, 0.01, 0.1),
                                reservoir_size=64)
        assert original.count == 500 and original.n_samples == 64
        assert copy.n_samples == 64
        # merging into an empty registry preserves the reservoir exactly,
        # so the (estimated) percentiles survive the trip unchanged
        for q in (50, 95, 99):
            assert copy.percentile(q) == pytest.approx(
                original.percentile(q))

    def test_plain_snapshot_histograms_refuse_merge(self):
        registry = self._populated()
        fresh = MetricsRegistry()
        with pytest.raises(ValueError, match="raw"):
            fresh.merge_snapshot(registry.snapshot())


class TestBenchWiring:
    """REPRO_BENCH_TRACE=1 appends exactly one RunRecord per bench."""

    @pytest.fixture
    def bench_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TRACE", "1")
        ledger_path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(ledger_path))
        monkeypatch.syspath_prepend(str(BENCH_DIR))
        import _common
        monkeypatch.setattr(_common, "_RECORDED_BENCHES", set())
        return ledger_path

    def test_traced_bench_appends_one_valid_record(self, bench_env,
                                                   tmp_path, monkeypatch):
        import bench_train_throughput as bench

        monkeypatch.setattr(bench, "REPORT_PATH",
                            tmp_path / "BENCH_train_throughput.json")
        bench.run(smoke=True, steps=2)
        records, skipped = RunLedger(bench_env).read()
        assert skipped == 0
        assert len(records) == 1, "exactly one RunRecord per bench"
        record = validate_record(records[0])
        assert record["kind"] == "bench"
        assert record["name"] == "BENCH_train_throughput"
        assert record["scalars"]["steps_per_second"] > 0
        assert record["scalars"]["median_step_ms"] > 0
        # re-rendering the same artifact in-process does not double-count
        import _common
        _common.record_bench("BENCH_train_throughput")
        assert len(RunLedger(bench_env)) == 1

    def test_report_helper_records_once(self, bench_env, monkeypatch,
                                        tmp_path):
        import _common
        monkeypatch.setattr(_common, "REPORT_DIR", tmp_path)
        _common.report("A Title", ["row"], "fake_table.txt")
        _common.report("A Title again", ["row"], "fake_table.txt")
        records, _ = RunLedger(bench_env).read()
        assert [r["name"] for r in records] == ["fake_table"]
        assert (tmp_path / "fake_table.txt").read_text(
            encoding="utf-8").startswith("== A Title again ==")

    def test_obs_ledger_tail_renders(self, bench_env, capsys):
        record_run("bench", "fig8", config={"bench": "fig8"},
                   scalars={"mean_epoch_seconds": 0.5})
        code = cli.main(["obs-ledger", "tail", "--ledger", str(bench_env)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig8" in out and "mean_epoch_seconds=0.5" in out
        assert "1 of 1 run(s)" in out

    def test_obs_ledger_show_and_list(self, bench_env, capsys):
        record = record_run("cv", "MTransE/EN-FR", scalars={"mrr": 0.4})
        code = cli.main(["obs-ledger", "show", record["run_id"],
                         "--ledger", str(bench_env)])
        assert code == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == record["run_id"]
        assert cli.main(["obs-ledger", "list",
                         "--ledger", str(bench_env)]) == 0
        capsys.readouterr()

    def test_obs_ledger_empty_and_missing_run(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert cli.main(["obs-ledger", "tail", "--ledger", missing]) == 1
        assert cli.main(["obs-ledger", "show", "nope",
                         "--ledger", missing]) == 2
        assert "error" in capsys.readouterr().err


class TestCrossValidateRecording:
    def test_cv_run_recorded_when_enabled(self, enfr_pair, tmp_path,
                                          monkeypatch):
        from repro.approaches import ApproachConfig
        from repro.approaches.trans_family import MTransE
        from repro.pipeline import cross_validate

        ledger_path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(ledger_path))
        result = cross_validate(
            lambda: MTransE(ApproachConfig(dim=16, epochs=2,
                                           valid_every=0)),
            enfr_pair, n_folds=1,
        )
        records, skipped = RunLedger(ledger_path).read()
        assert skipped == 0 and len(records) == 1
        record = records[0]
        assert record["kind"] == "cv"
        assert record["name"] == f"MTransE/{enfr_pair.name}"
        assert record["scalars"]["hits_at_1"] == pytest.approx(
            result.mean_std("hits@1")[0])
        assert record["scalars"]["mean_epoch_seconds"] > 0
