"""Numerical gradient checks for every differentiable op.

These tests pin the engine's correctness: each op's analytic gradient is
compared against central finite differences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import (
    Tensor,
    check_gradients,
    circular_correlation,
    concat,
    conv2d,
    maximum,
    set_sparse_gradients,
    sparse_matmul,
    stack,
    where,
)
from scipy import sparse

RNG = np.random.default_rng(42)


def _rand(*shape):
    return RNG.normal(size=shape)


@pytest.mark.parametrize(
    "func,shapes",
    [
        (lambda a, b: a + b, [(3, 4), (3, 4)]),
        (lambda a, b: a + b, [(3, 4), (4,)]),  # broadcast
        (lambda a, b: a - b, [(2, 3), (1, 3)]),
        (lambda a, b: a * b, [(3, 4), (3, 4)]),
        (lambda a, b: a * b, [(5,), (1,)]),
        (lambda a, b: a / (b * b + 1.0), [(3,), (3,)]),
        (lambda a: -a, [(4,)]),
        (lambda a: a**3, [(3, 2)]),
        (lambda a, b: a @ b, [(3, 4), (4, 5)]),
        (lambda a, b: a @ b, [(4,), (4, 2)]),
        (lambda a, b: a @ b, [(3, 4), (4,)]),
        (lambda a: a.sum(axis=1), [(3, 4)]),
        (lambda a: a.sum(axis=0, keepdims=True), [(3, 4)]),
        (lambda a: a.mean(axis=1), [(2, 5)]),
        (lambda a: a.reshape(6), [(2, 3)]),
        (lambda a: a.transpose(), [(2, 3)]),
        (lambda a: a.transpose(1, 0, 2), [(2, 3, 4)]),
        (lambda a: a.exp(), [(3, 3)]),
        (lambda a: (a * a + 1.0).log(), [(4,)]),
        (lambda a: (a * a + 1.0).sqrt(), [(4,)]),
        (lambda a: a.sigmoid(), [(3, 4)]),
        (lambda a: a.tanh(), [(3, 4)]),
        (lambda a: a.softplus(), [(3, 4)]),
        (lambda a: a.square(), [(3,)]),
        (lambda a: a.norm(axis=1), [(3, 4)]),
        (lambda a: a.l2_normalize(axis=1), [(3, 4)]),
        (lambda a: a.softmax(axis=1), [(3, 5)]),
        (lambda a, b: circular_correlation(a, b), [(8,), (8,)]),
        (lambda a, b: circular_correlation(a, b), [(3, 8), (3, 8)]),
        (lambda a, b: concat([a, b], axis=1), [(2, 3), (2, 2)]),
        (lambda a, b: stack([a, b], axis=1), [(2, 3), (2, 3)]),
        (lambda a, b: maximum(a * 2.0, b), [(4,), (4,)]),
    ],
)
def test_op_gradients(func, shapes):
    inputs = [_rand(*s) for s in shapes]
    check_gradients(func, inputs)


def test_relu_gradient_away_from_kink():
    a = _rand(5, 5)
    a[np.abs(a) < 0.1] = 0.5  # avoid the non-differentiable point
    check_gradients(lambda t: t.relu(), [a])


def test_abs_gradient_away_from_kink():
    a = _rand(6)
    a[np.abs(a) < 0.1] = 0.7
    check_gradients(lambda t: t.abs(), [a])


def test_gather_gradient():
    idx = np.array([0, 2, 2, 1])

    def func(table):
        return table.gather(idx).square()

    check_gradients(func, [_rand(4, 3)])


@pytest.mark.parametrize("sparse_enabled", [True, False])
def test_gather_duplicate_indices_gradient(sparse_enabled):
    """Heavily duplicated indices must coalesce correctly on both paths."""
    idx = np.array([3, 0, 3, 3, 1, 0, 3])

    def func(table):
        return table.gather(idx).square()

    previous = set_sparse_gradients(sparse_enabled)
    try:
        check_gradients(func, [_rand(5, 3)])
    finally:
        set_sparse_gradients(previous)


@pytest.mark.parametrize("sparse_enabled", [True, False])
def test_gather_mixed_sparse_dense_accumulation_gradient(sparse_enabled):
    """One parameter receives a sparse grad (gather) and a dense grad
    (full-matrix regularizer) in the same backward pass."""
    idx = np.array([2, 2, 0])

    def func(table):
        return table.gather(idx).square().sum() + 0.5 * table.square().sum()

    previous = set_sparse_gradients(sparse_enabled)
    try:
        check_gradients(func, [_rand(4, 3)])
    finally:
        set_sparse_gradients(previous)


def test_getitem_gradient():
    def func(a):
        return a[1:3, :2] * 2.0

    check_gradients(func, [_rand(4, 3)])


def test_where_gradient():
    cond = np.array([[True, False, True], [False, True, False]])

    def func(a, b):
        return where(cond, a * 2.0, b * 3.0)

    check_gradients(func, [_rand(2, 3), _rand(2, 3)])


def test_conv2d_gradient():
    x = _rand(2, 2, 5, 6)
    w = _rand(3, 2, 2, 3)
    b = _rand(3)

    def func(xt, wt, bt):
        return conv2d(xt, wt, bt)

    check_gradients(func, [x, w, b], atol=1e-4)


def test_conv2d_matches_naive():
    x = _rand(1, 1, 4, 4)
    w = _rand(1, 1, 2, 2)
    out = conv2d(Tensor(x), Tensor(w)).data
    expected = np.zeros((1, 1, 3, 3))
    for i in range(3):
        for j in range(3):
            expected[0, 0, i, j] = (x[0, 0, i:i + 2, j:j + 2] * w[0, 0]).sum()
    np.testing.assert_allclose(out, expected, atol=1e-12)


def test_conv2d_channel_mismatch_raises():
    with pytest.raises(ValueError):
        conv2d(Tensor(_rand(1, 2, 4, 4)), Tensor(_rand(1, 3, 2, 2)))


def test_sparse_matmul_gradient_wrt_dense():
    mat = sparse.random(5, 4, density=0.5, random_state=3, format="csr")

    def func(dense):
        return sparse_matmul(mat, dense)

    check_gradients(func, [_rand(4, 3)])


def test_sparse_matmul_forward_matches_dense():
    mat = sparse.random(6, 4, density=0.4, random_state=7, format="csr")
    dense = _rand(4, 2)
    out = sparse_matmul(mat, Tensor(dense)).data
    np.testing.assert_allclose(out, mat.toarray() @ dense, atol=1e-12)


def test_circular_correlation_definition():
    a, b = _rand(8), _rand(8)
    out = circular_correlation(Tensor(a), Tensor(b)).data
    n = len(a)
    expected = np.array(
        [sum(a[i] * b[(i + k) % n] for i in range(n)) for k in range(n)]
    )
    np.testing.assert_allclose(out, expected, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_chain_rule_property(rows, cols, seed):
    """d/dx sum(sigmoid(x W)) matches finite differences for random shapes."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, 3))
    check_gradients(lambda a, b: (a @ b).sigmoid(), [x, w])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_linearity_of_gradients(seed):
    """grad(sum(2f + 3g)) == 2 grad(sum f) + 3 grad(sum g)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4,))

    def run(scale_f, scale_g):
        t = Tensor(x, requires_grad=True)
        out = scale_f * t.square().sum() + scale_g * t.tanh().sum()
        out.backward()
        return t.grad.copy()

    combined = run(2.0, 3.0)
    separate = 2.0 * run(1.0, 0.0) + 3.0 * run(0.0, 1.0)
    np.testing.assert_allclose(combined, separate, atol=1e-10)
