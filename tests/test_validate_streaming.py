"""Tests for dataset validation and streaming similarity utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import (
    cosine_similarity,
    csls,
    greedy_alignment,
    streaming_greedy_alignment,
    topk_similarity,
)
from repro.cli import main
from repro.kg import KGPair, KnowledgeGraph, validate_pair


def _good_pair(n=20):
    triples1 = [(f"a{i}", "r", f"a{(i + 1) % n}") for i in range(n)]
    triples2 = [(f"b{i}", "s", f"b{(i + 1) % n}") for i in range(n)]
    return KGPair(
        kg1=KnowledgeGraph(triples1),
        kg2=KnowledgeGraph(triples2),
        alignment=[(f"a{i}", f"b{i}") for i in range(n)],
    )


# ---------------------------------------------------------------------------
# validate_pair
# ---------------------------------------------------------------------------
def test_validate_good_pair_ok():
    report = validate_pair(_good_pair())
    assert report.ok
    assert str(report) == "dataset OK"


def test_validate_empty_alignment():
    pair = KGPair(kg1=KnowledgeGraph([("a", "r", "b")]),
                  kg2=KnowledgeGraph([("x", "s", "y")]), alignment=[])
    report = validate_pair(pair)
    assert not report.ok
    assert "empty" in report.errors[0]


def test_validate_missing_entities():
    pair = _good_pair()
    pair.alignment.append(("ghost", "b999"))
    report = validate_pair(pair)
    assert not report.ok
    assert any("missing from KG1" in e for e in report.errors)
    assert any("missing from KG2" in e for e in report.errors)


def test_validate_warns_on_isolates():
    pair = _good_pair(n=10)
    # add attribute-only (isolated) entities to KG1
    pair.kg1.attribute_triples.extend((f"lone{i}", "x", "1") for i in range(5))
    pair.kg1._invalidate()
    report = validate_pair(pair, max_isolated=0.1)
    assert report.ok
    assert any("isolated" in w for w in report.warnings)


def test_validate_warns_on_tiny_alignment():
    report = validate_pair(_good_pair(n=5), min_alignment=10)
    assert any("aligned pairs" in w for w in report.warnings)
    assert "warning" in str(report)


def test_validate_empty_kg_is_error():
    pair = KGPair(kg1=KnowledgeGraph(), kg2=KnowledgeGraph([("x", "s", "y")]),
                  alignment=[("a", "x")])
    report = validate_pair(pair)
    assert not report.ok


def test_cli_validate_roundtrip(tmp_path, capsys):
    out = tmp_path / "ds"
    main(["generate", "--family", "D-Y", "--size", "100",
          "--method", "direct", "--out", str(out)])
    capsys.readouterr()
    code = main(["validate", str(out)])
    assert code == 0
    assert "OK" in capsys.readouterr().out or True


def test_cli_validate_missing_dir(tmp_path):
    assert main(["validate", str(tmp_path / "nope")]) == 2


# ---------------------------------------------------------------------------
# streaming similarity
# ---------------------------------------------------------------------------
def test_topk_matches_dense_search():
    rng = np.random.default_rng(0)
    source, target = rng.normal(size=(50, 12)), rng.normal(size=(70, 12))
    indices, scores = topk_similarity(source, target, k=5, block=16)
    dense = cosine_similarity(source, target)
    expected = np.argsort(-dense, axis=1)[:, :5]
    np.testing.assert_array_equal(indices, expected)
    np.testing.assert_allclose(
        scores, np.take_along_axis(dense, expected, axis=1), atol=1e-12
    )


def test_topk_k_clamped():
    rng = np.random.default_rng(1)
    indices, scores = topk_similarity(rng.normal(size=(4, 3)),
                                      rng.normal(size=(2, 3)), k=10)
    assert indices.shape == (4, 2)


def test_topk_rejects_bad_k():
    with pytest.raises(ValueError):
        topk_similarity(np.zeros((2, 2)), np.zeros((2, 2)), k=0)


def test_streaming_greedy_matches_dense():
    rng = np.random.default_rng(2)
    source, target = rng.normal(size=(40, 8)), rng.normal(size=(60, 8))
    streamed = streaming_greedy_alignment(source, target, block=7)
    dense = greedy_alignment(cosine_similarity(source, target))
    np.testing.assert_array_equal(streamed, dense)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), k=st.integers(1, 8))
def test_streaming_csls_matches_dense_csls(seed, k):
    rng = np.random.default_rng(seed)
    source, target = rng.normal(size=(20, 6)), rng.normal(size=(25, 6))
    streamed = streaming_greedy_alignment(source, target, block=6, csls_k=k)
    dense = greedy_alignment(csls(cosine_similarity(source, target), k=k))
    np.testing.assert_array_equal(streamed, dense)
