"""`make perf-gate` in miniature, as a fast test.

Seeds a fresh temporary ledger by running the in-process smoke
train-throughput bench a few times, then checks the two halves of the
gate contract: real run-to-run jitter passes, an injected 2x slowdown
(the ``REPRO_GATE_INJECT_FACTOR`` CI hook) fails with exit code 1.
"""

import os
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.obs import RunLedger, gate

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"

# Timing metrics only: the smoke-scale dense/sparse `speedup` ratio is
# too volatile for a fast test, and quality metrics need a CV run.
GATED_METRICS = ["steps_per_second", "median_step_ms"]

N_RUNS = 6  # 5-run trailing baseline + the current run


@pytest.fixture(scope="module")
def smoke_ledger(tmp_path_factory):
    """A ledger holding ``N_RUNS`` genuine smoke-bench runs."""
    tmp = tmp_path_factory.mktemp("gate_smoke")
    ledger_path = tmp / "ledger.jsonl"
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import _common
        import bench_train_throughput as bench
    finally:
        sys.path.remove(str(BENCH_DIR))
    saved_report_path = bench.REPORT_PATH
    saved_env = os.environ.get("REPRO_LEDGER_PATH")
    bench.REPORT_PATH = tmp / "BENCH_train_throughput.json"
    os.environ.pop("REPRO_LEDGER_PATH", None)
    try:
        # one unrecorded warmup run: cold caches would otherwise widen
        # the baseline spread enough to blunt the MAD z-score
        bench.run(smoke=True, steps=8)
        os.environ["REPRO_LEDGER_PATH"] = str(ledger_path)
        for _ in range(N_RUNS):
            # each bench process records once; emulate fresh processes
            _common._RECORDED_BENCHES.discard("BENCH_train_throughput")
            bench.run(smoke=True, steps=8)
    finally:
        bench.REPORT_PATH = saved_report_path
        if saved_env is None:
            os.environ.pop("REPRO_LEDGER_PATH", None)
        else:
            os.environ["REPRO_LEDGER_PATH"] = saved_env
    return ledger_path


def test_ledger_holds_one_record_per_run(smoke_ledger):
    records, skipped = RunLedger(smoke_ledger).read()
    assert skipped == 0
    assert len(records) == N_RUNS
    assert len({r["run_id"] for r in records}) == N_RUNS
    assert len({r["fingerprint"] for r in records}) == 1


def test_gate_passes_on_real_jitter(smoke_ledger):
    report = gate(RunLedger(smoke_ledger), metrics=GATED_METRICS)
    assert report.status == "ok", report.format()
    assert report.exit_code == 0


def test_gate_fails_with_injected_2x_slowdown(smoke_ledger):
    report = gate(RunLedger(smoke_ledger), metrics=GATED_METRICS,
                  inject_factor=2.0)
    assert report.status == "regressed", report.format()
    assert report.exit_code == 1
    assert {v.metric for v in report.regressions} == set(GATED_METRICS)


def test_cli_gate_honors_inject_env(smoke_ledger, monkeypatch, capsys):
    argv = ["obs-gate", "--ledger", str(smoke_ledger)]
    for metric in GATED_METRICS:
        argv += ["--metric", metric]
    assert cli.main(argv) == 0
    capsys.readouterr()
    monkeypatch.setenv("REPRO_GATE_INJECT_FACTOR", "2.0")
    assert cli.main(argv) == 1
    out = capsys.readouterr().out
    assert "verdict: REGRESSED" in out
