"""`make quality-smoke` in miniature (docs/observability.md).

One in-process run of ``repro quality-smoke`` against a temporary
ledger, then the three contracts around it: the smoke's own pass/fail
logic, the ``obs-conformance`` exit codes against the checked-in paper
tables, and the perf gate failing on an injected 30% Hits@1 drop over
the quality scalars the smoke recorded.
"""

import json
import os
from pathlib import Path

import pytest

from repro import cli
from repro.obs import RunLedger, gate

REPO = Path(__file__).resolve().parents[1]
REFERENCE = REPO / "benchmarks" / "reference" / "paper_tables.json"


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """One quality-smoke run recording into a fresh ledger."""
    tmp = tmp_path_factory.mktemp("quality_smoke")
    ledger_path = tmp / "ledger.jsonl"
    saved = os.environ.get("REPRO_LEDGER_PATH")
    os.environ["REPRO_LEDGER_PATH"] = str(ledger_path)
    cwd = os.getcwd()
    os.chdir(REPO)  # the smoke loads the checked-in reference tables
    try:
        code = cli.main(["quality-smoke", "--out", str(tmp / "out")])
    finally:
        os.chdir(cwd)
        if saved is None:
            os.environ.pop("REPRO_LEDGER_PATH", None)
        else:
            os.environ["REPRO_LEDGER_PATH"] = saved
    return {"code": code, "ledger": ledger_path, "out": tmp / "out"}


def test_quality_smoke_passes_and_writes_summary(smoke):
    assert smoke["code"] == 0
    summary = json.loads(
        (smoke["out"] / "quality_smoke.json").read_text())
    assert summary["ok"]
    sentinel = summary["sentinel"]
    assert sentinel["status"] == "diverged"
    assert sentinel["reason"]
    assert sentinel["epochs_run"] < 0.5 * sentinel["budget"]
    assert summary["cv"]["status"] in ("completed", "resumed")
    assert summary["cv"]["probes"] > 0
    # the diverging fit streamed probe + sentinel records onto its bus
    records = [json.loads(line) for line in
               (smoke["out"] / "diverge.jsonl").read_text().splitlines()]
    assert any(r["type"] == "sentinel" for r in records)


def test_ledger_carries_quality_scalars(smoke):
    records = RunLedger(smoke["ledger"]).records()
    cv = [r for r in records if r["kind"] == "cv"]
    assert cv
    scalars = cv[-1]["scalars"]
    for metric in ("hits_at_1", "hits_at_5", "hits_at_10", "mrr",
                   "probe_hits_at_1"):
        assert metric in scalars, metric


def test_obs_conformance_exit_codes(smoke, capsys):
    # the smoke's reduced-scale CV joins the MTransE/EN-FR reference
    # entry; its numbers are far below the paper's, so: drift (1) at
    # the default tolerance, within (0) with the band wide open
    assert cli.main(["obs-conformance", "--ledger", str(smoke["ledger"]),
                     "--reference", str(REFERENCE)]) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out and "MTransE" in out
    assert cli.main(["obs-conformance", "--ledger", str(smoke["ledger"]),
                     "--reference", str(REFERENCE),
                     "--rel-tolerance", "1e9"]) == 0
    # an absent/empty ledger has nothing to join: exit 2
    assert cli.main(["obs-conformance",
                     "--ledger", str(smoke["out"] / "missing.jsonl"),
                     "--reference", str(REFERENCE)]) == 2


def test_obs_conformance_json_output(smoke, capsys):
    cli.main(["obs-conformance", "--ledger", str(smoke["ledger"]),
              "--reference", str(REFERENCE), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"] == "drift"
    assert payload["exit_code"] == 1
    assert any(row["metric"] == "hits_at_1" for row in payload["rows"])


def test_gate_fails_on_injected_hits1_drop(smoke):
    """The perf-gate quality leg: a 30% Hits@1 drop must regress."""
    ledger = RunLedger(smoke["ledger"])
    records = ledger.records()
    current = [r for r in records if r["kind"] == "cv"][-1]
    # grow a trailing baseline from the genuine record (the gate needs
    # >= 3 comparable runs before it judges)
    for i in range(5):
        clone = dict(current)
        clone["run_id"] = f"{current['run_id']}-baseline{i}"
        ledger.append(clone)
    clean = gate(ledger, run_id=current["run_id"],
                 metrics=["hits_at_1", "probe_hits_at_1"])
    assert clean.status == "ok", clean.format()
    dropped = gate(ledger, run_id=current["run_id"],
                   metrics=["hits_at_1", "probe_hits_at_1"],
                   inject_factor=1.43)
    assert dropped.status == "regressed", dropped.format()
    assert dropped.exit_code == 1
