"""Tests for the AliNet extension approach."""

import numpy as np
import pytest

from repro.approaches import AliNet, APPROACHES, EXTRA_APPROACHES, get_approach


def test_alinet_in_extension_registry_not_core():
    assert "AliNet" in EXTRA_APPROACHES
    assert "AliNet" not in APPROACHES  # the paper's 12 stay authoritative
    approach = get_approach("alinet")
    assert isinstance(approach, AliNet)


def test_alinet_two_hop_adjacency_properties(enfr_pair, enfr_split, fast_config):
    approach = AliNet(fast_config)
    approach.fit(enfr_pair, enfr_split)
    two_hop = approach._two_hop_adjacency()
    assert two_hop.shape == approach.adjacency.shape
    assert np.all(two_hop.diagonal() == 0.0), "self-loops removed"
    row_sums = np.asarray(two_hop.sum(axis=1)).ravel()
    nonzero = row_sums[row_sums > 0]
    np.testing.assert_allclose(nonzero, np.ones_like(nonzero), atol=1e-9)


def test_alinet_trains_and_evaluates(enfr_pair, enfr_split, fast_config):
    approach = AliNet(fast_config)
    log = approach.fit(enfr_pair, enfr_split)
    assert log.epochs_run >= 1
    metrics = approach.evaluate(enfr_split.test, hits_at=(1, 5))
    assert np.isfinite(metrics.mr)
    assert metrics.hits_at(1) > 1.0 / len(enfr_split.test)


def test_alinet_encoder_forward_matches_embeddings(enfr_pair, enfr_split, fast_config):
    approach = AliNet(fast_config)
    approach.fit(enfr_pair, enfr_split)
    encoder = approach.encoders[0][0]
    np.testing.assert_allclose(encoder.embeddings(), encoder().data, atol=1e-9)


def test_alinet_gate_parameters_trainable(enfr_pair, enfr_split, fast_config):
    approach = AliNet(fast_config)
    approach.fit(enfr_pair, enfr_split)
    names = {p.name for p in approach._parameters()}
    assert any("gate" in n for n in names)
    assert any("w1" in n for n in names)
    assert any("w2" in n for n in names)
