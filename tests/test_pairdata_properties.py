"""Property-based tests on PairData's indexing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approaches import PairData
from repro.kg import AlignmentSplit, KGPair, KnowledgeGraph


@st.composite
def kg_pairs(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    ents1 = [f"a{i}" for i in range(n)]
    ents2 = [f"b{i}" for i in range(n)]
    triples1 = [
        (ents1[rng.integers(n)], f"r{rng.integers(3)}", ents1[rng.integers(n)])
        for _ in range(3 * n)
    ]
    triples2 = [
        (ents2[rng.integers(n)], f"s{rng.integers(3)}", ents2[rng.integers(n)])
        for _ in range(3 * n)
    ]
    pair = KGPair(
        kg1=KnowledgeGraph(triples1),
        kg2=KnowledgeGraph(triples2),
        alignment=[(a, b) for a, b in zip(ents1, ents2)],
    )
    n_train = draw(st.integers(min_value=1, max_value=n - 2))
    split = AlignmentSplit(
        train=pair.alignment[:n_train],
        valid=pair.alignment[n_train:n_train + 1],
        test=pair.alignment[n_train + 1:],
    )
    return pair, split


@settings(max_examples=30, deadline=None)
@given(data=kg_pairs(), merge=st.booleans())
def test_pairdata_ids_are_dense_and_consistent(data, merge):
    pair, split = data
    pd = PairData(pair, split, merge_seeds=merge)
    # every alignment entity resolves, and ids are within range
    for a, b in pair.alignment:
        assert 0 <= pd.entity_id(a) < pd.n_entities
        assert 0 <= pd.entity_id(b) < pd.n_entities
    # triples reference valid ids
    if len(pd.triples):
        assert pd.triples[:, [0, 2]].max() < pd.n_entities
        assert pd.triples[:, 1].max() < pd.n_relations
    # triple count is preserved by indexing
    assert len(pd.triples) == (
        len(pair.kg1.relation_triples) + len(pair.kg2.relation_triples)
    )


@settings(max_examples=30, deadline=None)
@given(data=kg_pairs())
def test_merging_folds_exactly_train_pairs(data):
    pair, split = data
    merged = PairData(pair, split, merge_seeds=True)
    unmerged = PairData(pair, split, merge_seeds=False)
    assert unmerged.n_entities - merged.n_entities == len(split.train)
    for a, b in split.train:
        assert merged.entity_id(a) == merged.entity_id(b)
    for a, b in split.test:
        assert merged.entity_id(a) != merged.entity_id(b)


@settings(max_examples=20, deadline=None)
@given(data=kg_pairs())
def test_seed_id_pairs_roundtrip(data):
    pair, split = data
    pd = PairData(pair, split, merge_seeds=False)
    ids = pd.seed_id_pairs(split.test)
    for (a, b), (ia, ib) in zip(split.test, ids):
        assert pd.entity_id(a) == ia
        assert pd.entity_id(b) == ib
