"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import RELATION_MODELS
from repro.kg import KGPair, KnowledgeGraph, load_pair, save_pair


# ---------------------------------------------------------------------------
# embedding models under random index fire
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(sorted(RELATION_MODELS)),
    seed=st.integers(0, 200),
)
def test_model_scores_always_finite(name, seed):
    rng = np.random.default_rng(seed)
    model = RELATION_MODELS[name](8, 3, 16, rng)
    heads = rng.integers(0, 8, size=6)
    rels = rng.integers(0, 3, size=6)
    tails = rng.integers(0, 8, size=6)
    scores = model.score(heads, rels, tails)
    assert scores.shape == (6,)
    assert np.isfinite(scores.data).all()


def test_model_single_triple_batch():
    rng = np.random.default_rng(0)
    for name, cls in RELATION_MODELS.items():
        model = cls(4, 2, 16, rng)
        scores = model.score(np.array([0]), np.array([0]), np.array([1]))
        assert scores.shape == (1,), name


# ---------------------------------------------------------------------------
# unicode and odd literals through I/O
# ---------------------------------------------------------------------------
def test_io_roundtrip_with_unicode_and_spaces(tmp_path):
    kg1 = KnowledgeGraph(
        relation_triples=[("é/è", "rel ation", "ü~2")],
        attribute_triples=[("é/è", "attr", "value with  double spaces, commas")],
    )
    kg2 = KnowledgeGraph(
        relation_triples=[("漢字", "r", "x")],
        attribute_triples=[("漢字", "a", "ローマ")],
    )
    pair = KGPair(kg1=kg1, kg2=kg2, alignment=[("é/è", "漢字")])
    save_pair(pair, tmp_path / "u")
    loaded = load_pair(tmp_path / "u")
    assert loaded.alignment == [("é/è", "漢字")]
    assert loaded.kg1.attribute_triples == kg1.attribute_triples


def test_io_rejects_embedded_tabs_gracefully(tmp_path):
    # a tab inside a value breaks the 3-column format on read
    kg = KnowledgeGraph(attribute_triples=[("e", "a", "bad\tvalue")])
    pair = KGPair(kg1=kg, kg2=KnowledgeGraph([("x", "r", "y")]),
                  alignment=[("e", "x")])
    save_pair(pair, tmp_path / "t")
    with pytest.raises(ValueError):
        load_pair(tmp_path / "t")


# ---------------------------------------------------------------------------
# degenerate graphs through the full approach stack
# ---------------------------------------------------------------------------
def test_approach_on_single_relation_graph():
    from repro.approaches import ApproachConfig, get_approach

    kg1 = KnowledgeGraph([(f"a{i}", "only", f"a{i + 1}") for i in range(20)])
    kg2 = KnowledgeGraph([(f"b{i}", "sole", f"b{i + 1}") for i in range(20)])
    pair = KGPair(kg1=kg1, kg2=kg2,
                  alignment=[(f"a{i}", f"b{i}") for i in range(21)])
    split = pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
    approach = get_approach("BootEA", ApproachConfig(dim=8, epochs=5,
                                                     valid_every=0))
    approach.fit(pair, split)
    metrics = approach.evaluate(split.test, hits_at=(1,))
    assert np.isfinite(metrics.mr)


def test_approach_without_any_attributes():
    from repro.approaches import ApproachConfig, get_approach

    kg1 = KnowledgeGraph([(f"a{i}", "r", f"a{(i * 3 + 1) % 15}") for i in range(15)])
    kg2 = KnowledgeGraph([(f"b{i}", "s", f"b{(i * 3 + 1) % 15}") for i in range(15)])
    pair = KGPair(kg1=kg1, kg2=kg2,
                  alignment=[(f"a{i}", f"b{i}") for i in range(15)])
    split = pair.split(train_ratio=0.3, valid_ratio=0.1, seed=0)
    # attribute-using approaches must degrade gracefully, not crash
    for name in ("JAPE", "MultiKE", "RDGCN"):
        approach = get_approach(name, ApproachConfig(dim=8, epochs=3,
                                                     valid_every=0))
        approach.fit(pair, split)
        assert np.isfinite(approach.evaluate(split.test, hits_at=(1,)).mr)


def test_sampling_pathological_star_graph():
    """IDS on a star: deleting the hub would orphan everything."""
    from repro.sampling import ids_sample

    n = 60
    kg1 = KnowledgeGraph([("hub1", "r", f"a{i}") for i in range(n)])
    kg2 = KnowledgeGraph([("hub2", "s", f"b{i}") for i in range(n)])
    alignment = [("hub1", "hub2")] + [(f"a{i}", f"b{i}") for i in range(n)]
    pair = KGPair(kg1=kg1, kg2=kg2, alignment=alignment)
    sampled = ids_sample(pair, 20, seed=0)
    # the graph survives: either the hub is kept or the sample is empty-ish
    if sampled.alignment:
        assert ("hub1", "hub2") in sampled.alignment, "PageRank keeps the hub"


def test_conventional_on_graph_without_values():
    from repro.conventional import LogMap, Paris

    kg = KnowledgeGraph([("a", "r", "b")])
    pair = KGPair(kg1=kg, kg2=KnowledgeGraph([("x", "s", "y")]),
                  alignment=[("a", "x")])
    assert Paris().align(pair).alignment == []
    assert LogMap().align(pair).alignment == []
