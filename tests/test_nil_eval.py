"""NIL-aware evaluation: abstention signals, calibration, matchers,
the pipeline's per-fold dangling metrics, and the end-to-end smoke gate."""

import numpy as np
import pytest

from repro.alignment import (
    apply_abstention,
    calibrate_abstention,
    greedy_alignment,
    infer_alignment,
    nil_aware_metrics,
    prf_metrics,
    stable_marriage,
    top_scores,
)
from repro.alignment.evaluate import DanglingMetrics, abstention_curve

SIM = np.array([
    [0.9, 0.1],   # matchable, gold 0, confident and right
    [0.2, 0.1],   # dangling (gold -1), low everywhere
    [0.8, 0.7],   # matchable, gold 1, confident but wrong + tight margin
])
GOLD = np.array([0, -1, 1])


# ---------------------------------------------------------------------------
# prf_metrics edge cases (division-by-zero guards)
# ---------------------------------------------------------------------------
def test_prf_empty_prediction_set_is_zero():
    result = prf_metrics([], {("a", "b")})
    assert (result.precision, result.recall, result.f1) == (0.0, 0.0, 0.0)


def test_prf_zero_positive_gold_is_zero():
    result = prf_metrics({("a", "b")}, [])
    assert (result.precision, result.recall, result.f1) == (0.0, 0.0, 0.0)
    both = prf_metrics([], [])
    assert (both.precision, both.recall, both.f1) == (0.0, 0.0, 0.0)


def test_prf_normal_case_unchanged():
    result = prf_metrics({("a", "1"), ("b", "2")}, {("a", "1"), ("c", "3")})
    assert result.precision == 0.5 and result.recall == 0.5
    assert result.f1 == 0.5


# ---------------------------------------------------------------------------
# top_scores
# ---------------------------------------------------------------------------
def test_top_scores_best_and_margin():
    best, margin = top_scores(SIM)
    np.testing.assert_allclose(best, [0.9, 0.2, 0.8])
    np.testing.assert_allclose(margin, [0.8, 0.1, 0.1], atol=1e-12)


def test_top_scores_degenerate_shapes():
    best, margin = top_scores(np.empty((3, 0)))
    np.testing.assert_array_equal(best, np.zeros(3))
    np.testing.assert_array_equal(margin, np.zeros(3))
    best, margin = top_scores(np.array([[0.4], [0.6]]))
    np.testing.assert_allclose(best, [0.4, 0.6])
    assert np.all(np.isposinf(margin))  # a lone candidate is unambiguous


# ---------------------------------------------------------------------------
# nil_aware_metrics
# ---------------------------------------------------------------------------
def test_nil_aware_metrics_threshold_hand_computed():
    nil = nil_aware_metrics(SIM, GOLD, method="threshold", threshold=0.5)
    assert nil.abstained == 1 and nil.n_dangling == 1 and nil.n_matchable == 2
    assert (nil.precision, nil.recall, nil.f1) == (1.0, 1.0, 1.0)
    # row 0 hits, row 2 ranks its gold second
    assert nil.hits1_matchable == 0.5
    assert nil.mrr_matchable == pytest.approx((1.0 + 0.5) / 2)


def test_nil_aware_metrics_margin_method():
    nil = nil_aware_metrics(SIM, GOLD, method="margin", threshold=0.5)
    # rows 1 and 2 both have margin 0.1 < 0.5: one true, one false positive
    assert nil.abstained == 2
    assert nil.precision == 0.5 and nil.recall == 1.0
    assert nil.f1 == pytest.approx(2 / 3)
    # the abstained matchable row counts as a Hits@1 miss
    assert nil.hits1_matchable == 0.5


def test_nil_aware_metrics_abstain_nothing_and_everything():
    none = nil_aware_metrics(SIM, GOLD, threshold=-1.0)
    assert none.abstained == 0 and none.f1 == 0.0
    everything = nil_aware_metrics(SIM, GOLD, threshold=2.0)
    assert everything.abstained == 3
    assert everything.recall == 1.0
    assert everything.hits1_matchable == 0.0
    # ranking quality is independent of the abstention decision
    assert everything.mrr_matchable == none.mrr_matchable


def test_nil_aware_metrics_rejects_unknown_method():
    with pytest.raises(ValueError, match="abstention method"):
        nil_aware_metrics(SIM, GOLD, method="oracle")


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------
def test_calibrate_abstention_separable_signals():
    similarity = np.diag([0.8, 0.9, 0.1, 0.2])
    gold = np.array([0, 1, -1, -1])
    threshold = calibrate_abstention(similarity, gold)
    assert threshold == pytest.approx(0.5)  # lowest F1=1 threshold
    assert nil_aware_metrics(similarity, gold, threshold=threshold).f1 == 1.0


def test_calibrate_abstention_prefers_fewest_abstentions():
    # both 0.5 and 0.85 reach F1=1? no — 0.85 over-abstains; but among
    # equal-F1 candidates the lowest threshold must win, keeping the
    # matchable Hits@1 cost minimal
    similarity = np.diag([0.8, 0.9, 0.1])
    gold = np.array([0, 1, -1])
    threshold = calibrate_abstention(similarity, gold)
    nil = nil_aware_metrics(similarity, gold, threshold=threshold)
    assert nil.f1 == 1.0 and nil.hits1_matchable == 1.0


def test_calibrate_abstention_fallback_without_dangling():
    similarity = np.diag(np.linspace(0.1, 1.0, 10))
    gold = np.arange(10)
    threshold = calibrate_abstention(similarity, gold,
                                     fallback_quantile=0.05)
    assert threshold == pytest.approx(np.quantile(np.linspace(0.1, 1.0, 10),
                                                  0.05))


def test_abstention_curve_covers_the_tradeoff():
    rng = np.random.default_rng(0)
    similarity = rng.random((30, 8))
    gold = np.array([-1] * 10 + list(rng.integers(0, 8, size=20)))
    curve = abstention_curve(similarity, gold, n_points=5)
    assert all(isinstance(point, DanglingMetrics) for point in curve)
    abstained = [point.abstained for point in curve]
    assert abstained == sorted(abstained)  # higher threshold, more NIL


# ---------------------------------------------------------------------------
# abstaining matchers
# ---------------------------------------------------------------------------
def test_apply_abstention_min_score_and_margin():
    assignment = SIM.argmax(axis=1)
    np.testing.assert_array_equal(
        apply_abstention(SIM, assignment, min_score=0.5), [0, -1, 0])
    np.testing.assert_array_equal(
        apply_abstention(SIM, assignment, min_margin=0.5), [0, -1, -1])
    assert apply_abstention(SIM, assignment) is assignment


def test_greedy_and_stable_marriage_abstain():
    np.testing.assert_array_equal(
        greedy_alignment(SIM, min_score=0.5), [0, -1, 0])
    matched = stable_marriage(SIM, min_score=0.5)
    assert matched[1] == -1
    assert set(matched[matched >= 0]) <= {0, 1}


@pytest.mark.parametrize("strategy", ["greedy", "stable_marriage",
                                      "heuristic", "hungarian"])
def test_infer_alignment_abstention_composes_with_strategies(strategy):
    square = np.array([
        [0.9, 0.1, 0.0],
        [0.2, 0.3, 0.25],  # the dangling row: best score below 0.5
        [0.0, 0.1, 0.8],
    ])
    result = infer_alignment(square, strategy=strategy, min_score=0.5)
    assert result[1] == -1  # abstains under every strategy
    clean = infer_alignment(square, strategy=strategy)
    assert np.all(clean >= 0)


# ---------------------------------------------------------------------------
# pipeline round trip (FoldResult.nil wire format)
# ---------------------------------------------------------------------------
def test_fold_nil_round_trip_and_clean_wire_shape():
    from repro.alignment.evaluate import RankMetrics
    from repro.approaches.base import TrainingLog
    from repro.pipeline.runner import FoldResult, fold_from_dict, fold_to_dict

    metrics = RankMetrics(hits={1: 0.5}, mr=2.0, mrr=0.6, n=10)
    nil = DanglingMetrics(method="threshold", threshold=0.4, precision=0.8,
                          recall=0.7, f1=0.75, hits1_matchable=0.9,
                          mrr_matchable=0.95, abstained=7, n_dangling=8,
                          n_matchable=20)
    fold = FoldResult(metrics=metrics, log=TrainingLog(), seconds=1.0,
                      approach=None, nil=nil)
    data = fold_to_dict(fold)
    assert fold_from_dict(data).nil == nil
    # clean folds keep the pre-NIL wire shape byte for byte
    clean = FoldResult(metrics=metrics, log=TrainingLog(), seconds=1.0,
                       approach=None)
    assert "nil" not in fold_to_dict(clean)
    assert fold_from_dict(fold_to_dict(clean)).nil is None


# ---------------------------------------------------------------------------
# end to end: the acceptance gate of docs/robustness.md
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_smoke_pair_dangling_detection_meets_the_gate():
    """dangling_rate=0.2 on the smoke pair: threshold abstention reaches
    F1 >= 0.5 while matchable Hits@1 stays within 5% of no-abstention."""
    from repro.approaches import ApproachConfig, get_approach
    from repro.datagen import smoke_pair
    from repro.datagen.corruption import dangling_sources

    pair = smoke_pair(n_entities=400, seed=0, dangling_rate=0.2)
    split = pair.split(train_ratio=0.3, seed=0)
    approach = get_approach(
        "IMUSE", ApproachConfig(dim=48, epochs=30, seed=0, valid_every=0))
    approach.fit(pair, split)
    clean_hits1 = approach.evaluate(split.test, hits_at=(1,)).hits_at(1)
    dangling = sorted(dangling_sources(pair))
    half = len(dangling) // 2
    threshold = approach.calibrate_abstention(split.valid, dangling[:half])
    nil = approach.evaluate_dangling(split.test, dangling[half:],
                                     threshold=threshold)
    assert nil.f1 >= 0.5, str(nil)
    assert nil.hits1_matchable >= 0.95 * clean_hits1, \
        f"{nil.hits1_matchable:.3f} vs clean {clean_hits1:.3f}"
    # full-candidate-set MRR is reported alongside
    assert 0.0 < nil.mrr_matchable <= 1.0


@pytest.mark.slow
def test_cross_validate_records_nil_metrics_for_corrupted_pairs(tmp_path):
    from repro.approaches import ApproachConfig, get_approach
    from repro.datagen import smoke_pair
    from repro.pipeline import cross_validate
    from repro.pipeline.runner import _cv_scalars

    pair = smoke_pair(n_entities=150, seed=0, dangling_rate=0.2)
    factory = lambda: get_approach(
        "IMUSE", ApproachConfig(dim=16, epochs=5, seed=0, valid_every=0))
    result = cross_validate(factory, pair, n_folds=1, seed=0,
                            checkpoint_dir=tmp_path / "ckpt")
    assert result.folds[0].nil is not None
    scalars = _cv_scalars(result, (1,))
    for key in ("dangling_f1", "dangling_precision", "dangling_recall",
                "hits_at_1_matchable", "mrr_matchable"):
        assert 0.0 <= scalars[key] <= 1.0
    # restored folds keep the nil metrics through the progress file
    resumed = cross_validate(factory, pair, n_folds=1, seed=0,
                             checkpoint_dir=tmp_path / "ckpt")
    assert resumed.status == "resumed"
    assert resumed.folds[0].nil == result.folds[0].nil
