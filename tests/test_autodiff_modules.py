"""Tests for Parameter/Module, layers, initializers and optimizers."""

import numpy as np
import pytest

from repro.autodiff import (
    Adagrad,
    Adam,
    EmbeddingTable,
    GRUCell,
    Highway,
    Linear,
    Module,
    Parameter,
    SGD,
    Tensor,
    get_initializer,
    get_optimizer,
    orthogonal_init,
    uniform_init,
    unit_init,
    xavier_init,
)

RNG = np.random.default_rng(7)


# ---------------------------------------------------------------------------
# Parameter / Module
# ---------------------------------------------------------------------------
def test_parameter_requires_grad():
    p = Parameter(np.zeros(3), name="p")
    assert p.requires_grad
    assert "p" in repr(p)


def test_parameter_assign_shape_check():
    p = Parameter(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        p.assign(np.zeros((3, 2)))


def test_parameter_assign_in_place():
    p = Parameter(np.zeros(3))
    buffer = p.data
    p.assign(np.ones(3))
    assert buffer is p.data
    np.testing.assert_allclose(p.data, np.ones(3))


class _Inner(Module):
    def __init__(self):
        self.w = Parameter(np.zeros(2), name="inner.w")


class _Outer(Module):
    def __init__(self):
        self.inner = _Inner()
        self.own = Parameter(np.zeros(3), name="outer.own")
        self.listed = [Parameter(np.zeros(1), name="outer.listed")]
        self.mapped = {"k": Parameter(np.zeros(1), name="outer.mapped")}
        self.shared = self.inner.w  # duplicate reference must not double-count


def test_module_collects_parameters_once():
    m = _Outer()
    params = m.parameters()
    names = sorted(p.name for p in params)
    assert names == ["inner.w", "outer.listed", "outer.mapped", "outer.own"]
    assert m.num_parameters() == 2 + 3 + 1 + 1


def test_module_zero_grad():
    m = _Outer()
    for p in m.parameters():
        p.grad = np.ones_like(p.data)
    m.zero_grad()
    assert all(p.grad is None for p in m.parameters())


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------
def test_linear_forward_shape_and_bias():
    layer = Linear(4, 3, RNG)
    out = layer(Tensor(RNG.normal(size=(5, 4))))
    assert out.shape == (5, 3)
    layer_nobias = Linear(4, 3, RNG, bias=False)
    assert layer_nobias.bias is None
    assert len(layer_nobias.parameters()) == 1


def test_embedding_table_lookup_and_normalize():
    table = EmbeddingTable(10, 6, RNG)
    out = table([1, 5, 5])
    assert out.shape == (3, 6)
    table.normalize_rows()
    norms = np.linalg.norm(table.all_embeddings(), axis=1)
    np.testing.assert_allclose(norms, np.ones(10), atol=1e-9)
    assert table.count == 10
    assert table.dim == 6


def test_embedding_gradient_flows_to_rows():
    table = EmbeddingTable(5, 4, RNG)
    out = table([0, 0, 3])
    out.sum().backward()
    grad = table.table.grad
    assert grad[0].sum() == pytest.approx(8.0)  # two lookups of row 0
    assert grad[3].sum() == pytest.approx(4.0)
    assert np.all(grad[[1, 2, 4]] == 0.0)


def test_gru_cell_shapes_and_state_update():
    cell = GRUCell(4, 6, RNG)
    h = cell.initial_state(3)
    x = Tensor(RNG.normal(size=(3, 4)))
    h2 = cell(x, h)
    assert h2.shape == (3, 6)
    assert not np.allclose(h2.data, 0.0)


def test_highway_initially_passes_input_through():
    gate = Highway(4, RNG)
    x = Tensor(RNG.normal(size=(2, 4)))
    transformed = Tensor(np.zeros((2, 4)))
    out = gate(x, transformed)
    # gate bias = -1 => carry ~73% of input when weights are small
    correlation = np.corrcoef(out.data.ravel(), x.data.ravel())[0, 1]
    assert correlation > 0.9


# ---------------------------------------------------------------------------
# Initializers
# ---------------------------------------------------------------------------
def test_unit_init_rows_unit_norm():
    data = unit_init((20, 8), RNG)
    np.testing.assert_allclose(np.linalg.norm(data, axis=1), np.ones(20), atol=1e-9)


def test_uniform_init_bounds():
    data = uniform_init((100, 16), RNG)
    bound = 6.0 / np.sqrt(16)
    assert np.all(np.abs(data) <= bound)


def test_orthogonal_init_orthonormal_columns():
    data = orthogonal_init((8, 8), RNG)
    np.testing.assert_allclose(data @ data.T, np.eye(8), atol=1e-8)


def test_orthogonal_init_rectangular():
    data = orthogonal_init((10, 4), RNG)
    np.testing.assert_allclose(data.T @ data, np.eye(4), atol=1e-8)


def test_xavier_init_bound():
    data = xavier_init((50, 30), RNG)
    bound = np.sqrt(6.0 / 80)
    assert np.all(np.abs(data) <= bound)


def test_get_initializer_lookup_and_error():
    assert get_initializer("xavier") is xavier_init
    with pytest.raises(KeyError):
        get_initializer("nope")


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------
def _quadratic_step(optimizer_cls, steps=200, **kwargs):
    p = Parameter(np.array([5.0, -3.0]))
    opt = optimizer_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        loss = (Tensor(p.data) * 0.0).sum()  # placeholder to appease linters
        p.grad = 2.0 * p.data  # gradient of sum(p^2)
        opt.step()
    del loss
    return p.data


def test_sgd_converges_on_quadratic():
    final = _quadratic_step(SGD, lr=0.1)
    np.testing.assert_allclose(final, np.zeros(2), atol=1e-6)


def test_sgd_momentum_converges():
    final = _quadratic_step(SGD, lr=0.05, momentum=0.9)
    np.testing.assert_allclose(final, np.zeros(2), atol=1e-4)


def test_adagrad_converges_on_quadratic():
    final = _quadratic_step(Adagrad, steps=800, lr=0.5)
    np.testing.assert_allclose(final, np.zeros(2), atol=1e-2)


def test_adam_converges_on_quadratic():
    final = _quadratic_step(Adam, steps=800, lr=0.05)
    np.testing.assert_allclose(final, np.zeros(2), atol=1e-4)


def test_optimizer_skips_parameters_without_grad():
    p = Parameter(np.ones(2))
    opt = SGD([p], lr=0.1)
    opt.step()  # no grad set: should be a no-op
    np.testing.assert_allclose(p.data, np.ones(2))


def test_optimizer_rejects_bad_lr():
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(1))], lr=0.0)


def test_get_optimizer_factory():
    p = Parameter(np.zeros(1))
    assert isinstance(get_optimizer("adam", [p], lr=0.01), Adam)
    assert isinstance(get_optimizer("SGD", [p], lr=0.01), SGD)
    with pytest.raises(KeyError):
        get_optimizer("rmsprop", [p], lr=0.01)


def test_end_to_end_training_regression():
    """A tiny linear regression must fit with Adam through the full graph."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 3))
    true_w = np.array([[1.0], [-2.0], [0.5]])
    y = x @ true_w
    layer = Linear(3, 1, rng)
    opt = Adam(layer.parameters(), lr=0.05)
    for _ in range(300):
        opt.zero_grad()
        pred = layer(Tensor(x))
        loss = (pred - Tensor(y)).square().mean()
        loss.backward()
        opt.step()
    np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)
