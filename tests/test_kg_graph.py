"""Tests for the KnowledgeGraph data model and EntityIndex."""

import pytest

from repro.kg import EntityIndex, KnowledgeGraph


@pytest.fixture
def small_kg():
    return KnowledgeGraph(
        relation_triples=[
            ("a", "r1", "b"),
            ("b", "r1", "c"),
            ("a", "r2", "c"),
            ("c", "r2", "d"),
        ],
        attribute_triples=[
            ("a", "name", "Alpha"),
            ("a", "pop", "100"),
            ("e", "name", "Echo"),  # attribute-only entity
        ],
        name="test",
    )


def test_entities_union_of_triples(small_kg):
    assert small_kg.entities == frozenset("abcde")
    assert small_kg.num_entities == 5


def test_relations_and_attributes(small_kg):
    assert small_kg.relations == frozenset({"r1", "r2"})
    assert small_kg.attributes == frozenset({"name", "pop"})


def test_degrees_count_both_endpoints(small_kg):
    degrees = small_kg.degrees()
    assert degrees == {"a": 2, "b": 2, "c": 3, "d": 1, "e": 0}


def test_average_degree_excludes_isolated(small_kg):
    # 4 triples * 2 endpoints / 4 entities with degree > 0
    assert small_kg.average_degree() == pytest.approx(8 / 4)


def test_adjacency_undirected(small_kg):
    assert small_kg.neighbors("a") == {"b", "c"}
    assert small_kg.neighbors("d") == {"c"}
    assert small_kg.neighbors("e") == set()


def test_adjacency_ignores_self_loops():
    kg = KnowledgeGraph(relation_triples=[("a", "r", "a"), ("a", "r", "b")])
    assert kg.neighbors("a") == {"b"}


def test_entity_attributes(small_kg):
    attrs = small_kg.entity_attributes()
    assert attrs["a"] == [("name", "Alpha"), ("pop", "100")]
    assert attrs["e"] == [("name", "Echo")]
    assert "b" not in attrs


def test_attribute_triples_of(small_kg):
    assert small_kg.attribute_triples_of("e") == [("e", "name", "Echo")]


def test_filtered_keeps_induced_subgraph(small_kg):
    sub = small_kg.filtered({"a", "b", "c"})
    assert sub.entities == frozenset("abc")
    assert len(sub.relation_triples) == 3  # (c, r2, d) dropped
    assert len(sub.attribute_triples) == 2  # only 'a' attributes


def test_filtered_renames(small_kg):
    assert small_kg.filtered({"a"}, name="sub").name == "sub"
    assert small_kg.filtered({"a"}).name == "test"


def test_without_attributes_and_relations(small_kg):
    rel_only = small_kg.without_attributes()
    assert rel_only.attribute_triples == []
    assert len(rel_only.relation_triples) == 4
    attr_only = small_kg.without_relations()
    assert attr_only.relation_triples == []
    assert len(attr_only.attribute_triples) == 3


def test_multi_mapping_relation_entities():
    kg = KnowledgeGraph(
        relation_triples=[
            ("a", "r", "b"),
            ("a", "r", "c"),  # head 'a' maps to two tails via r
            ("x", "s", "y"),  # 1-to-1
        ]
    )
    involved = kg.multi_mapping_relation_entities()
    assert involved == frozenset({"a", "b", "c"})


def test_empty_graph_stats():
    kg = KnowledgeGraph()
    assert kg.num_entities == 0
    assert kg.average_degree() == 0.0
    assert kg.degrees() == {}


def test_repr_mentions_counts(small_kg):
    text = repr(small_kg)
    assert "entities=5" in text
    assert "rel_triples=4" in text


# ---------------------------------------------------------------------------
# EntityIndex
# ---------------------------------------------------------------------------
def test_entity_index_roundtrip():
    index = EntityIndex(["x", "y"])
    assert index.id_of("x") == 0
    assert index.item_of(1) == "y"
    assert len(index) == 2
    assert "x" in index
    assert "z" not in index


def test_entity_index_add_idempotent():
    index = EntityIndex()
    first = index.add("a")
    second = index.add("a")
    assert first == second == 0
    assert len(index) == 1


def test_entity_index_bulk_ids():
    index = EntityIndex(["a", "b", "c"])
    assert index.ids(["c", "a"]) == [2, 0]
    assert index.items() == ["a", "b", "c"]
