"""Fixed-seed dense-vs-sparse loss-curve equivalence (acceptance check).

Trains a small TransE model for 50 steps twice — once with the sparse
gradient path, once densely — with identical seeds, batches and
negatives, and requires the loss curves to agree within 1e-6 for SGD,
Adagrad and Adam.

Adam and momentum-SGD use *lazy* sparse semantics (per-row step
counters), which are bit-identical to dense only when every row is
touched every step; the batches here are built to cover every entity
and relation each step.  SGD (no momentum) and Adagrad are exactly
dense-equivalent at any coverage, which a second test exercises with
partial batches.
"""

import numpy as np
import pytest

from repro.autodiff import SGD, Adagrad, Adam, set_sparse_gradients
from repro.embedding import TransE, margin_ranking_loss, uniform_corrupt

N_ENTITIES = 40
N_RELATIONS = 5
DIM = 8
STEPS = 50


def _full_coverage_batches(steps: int, seed: int = 11):
    """One batch per step in which every entity and relation appears.

    Heads and tails are permutations of all entities; relations cycle
    through all ids plus random fill — so lazy per-row step counters
    advance in lockstep with the dense global step counter.
    """
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(steps):
        heads = rng.permutation(N_ENTITIES)
        tails = rng.permutation(N_ENTITIES)
        relations = np.concatenate(
            [np.arange(N_RELATIONS), rng.integers(0, N_RELATIONS, N_ENTITIES - N_RELATIONS)]
        )
        rng.shuffle(relations)
        batches.append(np.stack([heads, relations, tails], axis=1))
    return batches


def _run_curve(make_optimizer, batches, sparse: bool, seed: int = 3):
    previous = set_sparse_gradients(sparse)
    try:
        model = TransE(N_ENTITIES, N_RELATIONS, DIM, np.random.default_rng(seed))
        optimizer = make_optimizer(model.parameters())
        negative_rng = np.random.default_rng(seed + 1)
        losses = []
        for batch in batches:
            negatives = uniform_corrupt(batch, N_ENTITIES, 1, negative_rng)
            optimizer.zero_grad()
            positive = model.score(batch[:, 0], batch[:, 1], batch[:, 2])
            negative = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
            loss = margin_ranking_loss(positive, negative)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        return np.array(losses), {p.name: p.data.copy() for p in model.parameters()}
    finally:
        set_sparse_gradients(previous)


@pytest.mark.parametrize("name,factory", [
    ("sgd", lambda params: SGD(params, lr=0.05)),
    ("sgd_momentum", lambda params: SGD(params, lr=0.05, momentum=0.9)),
    ("adagrad", lambda params: Adagrad(params, lr=0.05)),
    ("adam", lambda params: Adam(params, lr=0.01)),
])
def test_loss_curves_match_dense_within_1e6(name, factory):
    batches = _full_coverage_batches(STEPS)
    sparse_losses, sparse_params = _run_curve(factory, batches, sparse=True)
    dense_losses, dense_params = _run_curve(factory, batches, sparse=False)
    np.testing.assert_allclose(sparse_losses, dense_losses, atol=1e-6)
    for key in dense_params:
        np.testing.assert_allclose(sparse_params[key], dense_params[key], atol=1e-6)


@pytest.mark.parametrize("factory", [
    lambda params: SGD(params, lr=0.05),
    lambda params: Adagrad(params, lr=0.05),
])
def test_sgd_and_adagrad_exact_at_partial_coverage(factory):
    """Without momentum state there is no lazy approximation at all."""
    rng = np.random.default_rng(23)
    batches = [
        np.stack([
            rng.integers(0, N_ENTITIES, 16),
            rng.integers(0, N_RELATIONS, 16),
            rng.integers(0, N_ENTITIES, 16),
        ], axis=1)
        for _ in range(30)
    ]
    sparse_losses, sparse_params = _run_curve(factory, batches, sparse=True)
    dense_losses, dense_params = _run_curve(factory, batches, sparse=False)
    np.testing.assert_allclose(sparse_losses, dense_losses, atol=1e-12)
    for key in dense_params:
        np.testing.assert_allclose(sparse_params[key], dense_params[key], atol=1e-12)


def test_lazy_normalize_trains_comparably(enfr_pair, enfr_split):
    """Lazy per-epoch normalization (only rows touched this step) must
    train to quality comparable with the paper's full O(|E|) pass."""
    from repro.approaches import ApproachConfig, get_approach

    def run(lazy):
        config = ApproachConfig(dim=16, epochs=8, lr=0.05, batch_size=256,
                                n_negatives=2, seed=0, lazy_normalize=lazy)
        approach = get_approach("MTransE", config)
        approach.fit(enfr_pair, enfr_split)
        return approach.evaluate(enfr_split.test, hits_at=(10,)).hits_at(10)

    eager, lazy = run(False), run(True)
    assert lazy >= 0.5 * eager  # same ballpark; protocols differ slightly


def test_normalize_rows_subset_matches_full():
    from repro.autodiff import EmbeddingTable

    rng = np.random.default_rng(0)
    full = EmbeddingTable(8, 4, rng)
    subset = EmbeddingTable(8, 4, np.random.default_rng(0))
    np.testing.assert_allclose(full.table.data, subset.table.data)

    rows = np.array([1, 5, 6])
    full.normalize_rows()
    subset.normalize_rows(rows)
    np.testing.assert_allclose(subset.table.data[rows], full.table.data[rows])
    untouched = np.delete(np.arange(8), rows)
    assert not np.allclose(subset.table.data[untouched], full.table.data[untouched])
