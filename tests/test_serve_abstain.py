"""Serving-time abstention: thresholds, store calibration, degradation."""

import numpy as np
import pytest

from repro import faults
from repro.faults import InjectedFault
from repro.pipeline.checkpoint import EmbeddingSnapshot
from repro.serve import EmbeddingStore, QueryEngine, StoredEmbeddings


@pytest.fixture(scope="module")
def stored():
    """Three sources with known cosine structure against 4 axis targets.

    s0 matches t0 exactly (score 1.0, huge margin), s1 sits between t1
    and t2 (top ~0.72, margin ~0.03 — confident enough but ambiguous),
    s2 is equidistant from everything (top 0.5 — just weak).
    """
    target = np.eye(4)
    source = np.stack([
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.96, 0.0],
        [1.0, 1.0, 1.0, 1.0],
    ])
    return StoredEmbeddings(
        version="v001",
        sources=["s0", "s1", "s2"],
        targets=[f"t{i}" for i in range(4)],
        source_matrix=source,
        target_matrix=target,
    )


def test_abstain_threshold_rejects_low_scores(stored):
    engine = QueryEngine(stored, abstain_threshold=0.6)
    confident, ambiguous, weak = engine.query_batch(["s0", "s1", "s2"])
    assert not confident.abstained and confident.best == "t0"
    assert not ambiguous.abstained  # top ~0.72 clears the threshold
    assert weak.abstained and weak.best is None
    assert weak.neighbors  # ranked candidates stay inspectable
    assert engine.metrics.abstained == 1
    assert engine.metrics.summary()["abstained"] == 1


def test_abstain_margin_rejects_crowded_neighborhoods(stored):
    engine = QueryEngine(stored, abstain_margin=0.1)
    confident, ambiguous, _ = engine.query_batch(["s0", "s1", "s2"])
    assert not confident.abstained
    assert ambiguous.abstained  # t1 vs t2 margin ~0.03 < 0.1
    assert ambiguous.best is None


def test_no_policy_never_abstains(stored):
    engine = QueryEngine(stored)
    assert not any(r.abstained for r in engine.query_batch(["s0", "s1", "s2"]))
    assert engine.metrics.abstained == 0


def test_cache_hits_recount_abstentions(stored):
    engine = QueryEngine(stored, abstain_threshold=0.6)
    engine.query("s2")
    engine.query("s2")  # served from cache, still an abstained answer
    assert engine.metrics.cache_hits == 1
    assert engine.metrics.abstained == 2


def test_from_store_picks_up_calibrated_threshold(tmp_path, stored):
    store = EmbeddingStore(tmp_path / "store")
    store.save(
        EmbeddingSnapshot(stored.sources, np.asarray(stored.source_matrix),
                          stored.targets, np.asarray(stored.target_matrix)),
        metadata={"abstain_threshold": 0.6},
    )
    engine = QueryEngine.from_store(store)
    assert engine.abstain_threshold == 0.6
    assert engine.query("s2").abstained
    # explicit kwargs win over the persisted calibration
    lenient = QueryEngine.from_store(store, abstain_threshold=0.01)
    assert lenient.abstain_threshold == 0.01
    assert not lenient.query("s2").abstained


def test_abstention_survives_index_degradation(stored):
    """inject('serve.query') fails the ANN search; the engine degrades
    to exact and must make the same abstention decisions afterwards."""
    engine = QueryEngine(stored, index="lsh", abstain_threshold=0.6,
                         n_bits=4, seed=0)
    with faults.inject("serve.query:nth=1:mode=raise"):
        degraded = engine.query_batch(["s0", "s1", "s2"])
    assert engine.degraded
    reference = QueryEngine(stored, abstain_threshold=0.6) \
        .query_batch(["s0", "s1", "s2"])
    assert [r.abstained for r in degraded] == [r.abstained for r in reference]
    assert [r.best for r in degraded] == [r.best for r in reference]
    # deterministic: re-querying the degraded engine agrees with itself
    engine._cache.clear()
    again = engine.query_batch(["s0", "s1", "s2"])
    assert [r.abstained for r in again] == [r.abstained for r in degraded]


def test_exact_search_fault_is_fatal(stored):
    engine = QueryEngine(stored)  # exact: nothing to degrade to
    with faults.inject("serve.query:nth=1:mode=raise"):
        with pytest.raises(InjectedFault):
            engine.query("s0")
