"""API quality gates: every public item is documented and importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro", "repro.autodiff", "repro.kg", "repro.text", "repro.datagen",
    "repro.sampling", "repro.embedding", "repro.alignment",
    "repro.approaches", "repro.conventional", "repro.analysis",
    "repro.pipeline", "repro.cli", "repro.orchestrate", "repro.fingerprint",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_exist_and_documented(module_name):
    module = importlib.import_module(module_name)
    exports = getattr(module, "__all__", [])
    for name in exports:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert inspect.getdoc(item), f"{module_name}.{name} lacks a docstring"


def test_every_source_module_has_docstring():
    import repro as root

    package_path = root.__path__
    missing = []
    for info in pkgutil.walk_packages(package_path, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_have_documented_public_methods():
    from repro.approaches import EmbeddingApproach
    from repro.conventional import LogMap, Paris
    from repro.embedding import RelationModel

    for cls in (EmbeddingApproach, RelationModel, Paris, LogMap):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])
