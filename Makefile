.PHONY: install test bench examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench
