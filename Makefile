.PHONY: install test verify bench serve-bench examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# tier-1 gate: the exact command CI runs
verify:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# serving-layer throughput at smoke scale (full scale: drop the env var)
serve-bench:
	REPRO_SERVE_SCALES=2000 PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench
