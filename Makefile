.PHONY: install test test-fast verify bench serve-bench train-bench train-bench-smoke obs-smoke obs-top-smoke perf-gate perf-gate-smoke quality-smoke faults-smoke robustness-smoke sweep-smoke tables examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# skip tests marked slow (full approach training loops)
test-fast:
	PYTHONPATH=src python -m pytest -q -m "not slow"

# tier-1 gate: the exact command CI runs
verify:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# serving-layer throughput at smoke scale (full scale: drop the env var)
serve-bench:
	REPRO_SERVE_SCALES=2000 PYTHONPATH=src python -m pytest benchmarks/bench_serve_throughput.py --benchmark-only

# dense-vs-sparse training-step throughput (docs/performance.md)
train-bench:
	PYTHONPATH=src python benchmarks/bench_train_throughput.py

train-bench-smoke:
	PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke

# 2-epoch fully-instrumented training + telemetry report (docs/observability.md)
obs-smoke:
	PYTHONPATH=src python -m repro.cli obs-smoke --epochs 2 --out benchmarks/reports/obs_smoke
	PYTHONPATH=src python -m repro.cli obs-report benchmarks/reports/obs_smoke/events.jsonl

# tiny jobs=2 telemetered sweep, then the live dashboard one-shot:
# machine-readable state first (CI contract), human frame second, and
# a merged multi-process phase report from the worker trace files
# (docs/observability.md, "Distributed tracing & live dashboards")
obs-top-smoke:
	rm -rf benchmarks/reports/obs_top_smoke
	PYTHONPATH=src python -m repro.cli sweep \
		--spec benchmarks/sweeps/smoke.toml --jobs 2 --no-record \
		--workdir benchmarks/reports/obs_top_smoke
	PYTHONPATH=src python -m repro.cli obs-top \
		benchmarks/reports/obs_top_smoke --json > \
		benchmarks/reports/obs_top_smoke/top.json
	PYTHONPATH=src python -m repro.cli obs-top \
		benchmarks/reports/obs_top_smoke --once
	PYTHONPATH=src python -m repro.cli obs-report \
		benchmarks/reports/obs_top_smoke/telemetry

# run the smoke bench (appends a ledger RunRecord), then gate the run
# against its trailing same-fingerprint baseline; the quality leg runs
# the probe/sentinel smoke (which records a CV with hits@k scalars) and
# gates that record too, so Hits@1 regressions fail alongside slowdowns
# (docs/observability.md)
perf-gate:
	REPRO_BENCH_TRACE=1 PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke
	PYTHONPATH=src python -m repro.cli obs-gate --ledger benchmarks/reports/ledger.jsonl
	rm -rf benchmarks/reports/quality_smoke
	REPRO_LEDGER_PATH=benchmarks/reports/ledger.jsonl PYTHONPATH=src \
		python -m repro.cli quality-smoke --out benchmarks/reports/quality_smoke
	PYTHONPATH=src python -m repro.cli obs-gate --ledger benchmarks/reports/ledger.jsonl

# fast pytest covering the same loop: seed a fresh ledger, re-run,
# assert the gate passes on jitter and fails on an injected 2x slowdown
perf-gate-smoke:
	PYTHONPATH=src python -m pytest -q tests/test_obs_gate_smoke.py

# model-quality smoke: a deliberately diverging run must be aborted by
# the sentinel, a probed 2-fold CV must record per-epoch quality curves,
# and the conformance report must print against the checked-in paper
# tables; then the fast pytest covering probes, sentinels, conformance
# exit codes and the injected-Hits@1-drop gate (docs/observability.md)
quality-smoke:
	rm -rf benchmarks/reports/quality_smoke
	REPRO_LEDGER_PATH=benchmarks/reports/ledger.jsonl PYTHONPATH=src \
		python -m repro.cli quality-smoke --out benchmarks/reports/quality_smoke
	PYTHONPATH=src python -m pytest -q tests/test_quality_smoke.py

# crash-replay suite: injected kills/torn writes at every persistence
# site, then resume, asserting bit-identical training (docs/robustness.md)
faults-smoke:
	PYTHONPATH=src python -m pytest -q tests/test_faults.py tests/test_crash_replay.py

# data-level robustness gate (<10s): corrupt the smoke pair with 20%
# dangling entities, train the literal approach, calibrate abstention
# and require dangling-detection F1 >= 0.5 with matchable Hits@1 within
# 5% of the no-abstention baseline (docs/robustness.md)
robustness-smoke:
	PYTHONPATH=src python -m repro.cli robustness --check

# toy 2-approach x 2-dataset sweep through the parallel orchestrator
# (docs/orchestration.md): runs with jobs=2, then reruns serially to
# report the speedup and verify bit-identical metrics, plus the fast
# orchestrator test files
sweep-smoke:
	REPRO_LEDGER_PATH=benchmarks/reports/ledger.jsonl PYTHONPATH=src \
		python -m repro.cli sweep --spec benchmarks/sweeps/smoke.toml \
		--jobs 2 --workdir benchmarks/reports/sweep_smoke --compare-serial
	PYTHONPATH=src python -m pytest -q tests/test_orchestrate.py tests/test_sweep_smoke.py

# regenerate the paper-table sweep (tuned via successive halving, 5-fold
# CV at full budget), then gate its ledger records against the trailing
# baseline *within this sweep* — a regression fails the target
tables:
	REPRO_LEDGER_PATH=benchmarks/reports/ledger.jsonl PYTHONPATH=src \
		python -m repro.cli sweep --spec benchmarks/sweeps/tables.toml \
		--jobs 4 --workdir benchmarks/reports/sweep_tables \
		--out benchmarks/reports/tables.txt
	PYTHONPATH=src python -m repro.cli obs-gate \
		--ledger benchmarks/reports/ledger.jsonl --sweep tables

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench
