"""Table 9: required input information of every system (capability matrix)."""

from repro.approaches import APPROACHES, REQUIRED_INFORMATION, required_information_table

from _common import report


def bench_table9_required_information(benchmark):
    def run():
        return required_information_table()

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table 9 - required information", table.splitlines(), "table9.txt")

    # matrix covers the 12 approaches + the 2 conventional systems
    assert set(REQUIRED_INFORMATION) == set(APPROACHES) | {"LogMap", "PARIS"}
    # Table 9 facts: all embedding approaches need pre-aligned entities,
    # the conventional ones do not
    for name in APPROACHES:
        assert REQUIRED_INFORMATION[name]["prealigned"].startswith("*")
    for name in ("LogMap", "PARIS"):
        assert REQUIRED_INFORMATION[name]["prealigned"].strip(" /") == ""
        assert "*" in REQUIRED_INFORMATION[name]["triples"]  # attribute triples
