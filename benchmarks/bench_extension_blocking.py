"""Extension bench (§7.2 large-scale): LSH blocking cost/recall tradeoff.

Not a paper table — it quantifies the candidate-space reduction the
paper's future-work section calls for, on embeddings from a trained
approach.
"""

import time

import numpy as np

from repro.alignment import blocked_greedy_alignment, cosine_similarity, greedy_alignment

from _common import fold, report, trained


def bench_extension_blocking(benchmark):
    def run():
        approach = trained("BootEA", "EN-FR", "V1")
        split = fold("EN-FR", "V1")
        source = approach._source_matrix([a for a, _ in split.test])
        target = approach._target_matrix([b for _, b in split.test])
        gold = np.arange(len(split.test))

        started = time.perf_counter()
        full = greedy_alignment(cosine_similarity(source, target))
        full_seconds = time.perf_counter() - started

        results = {"full": (float((full == gold).mean()), 1.0, full_seconds)}
        for n_tables in (2, 4, 8):
            started = time.perf_counter()
            blocked, fraction = blocked_greedy_alignment(
                source, target, n_bits=7, n_tables=n_tables, seed=0
            )
            seconds = time.perf_counter() - started
            results[f"lsh_t{n_tables}"] = (
                float((blocked == gold).mean()), fraction, seconds
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'variant':10s} {'H@1':>6s} {'scored':>8s} {'seconds':>8s}"]
    for key, (hits1, fraction, seconds) in results.items():
        rows.append(f"{key:10s} {hits1:6.3f} {fraction:8.1%} {seconds:8.4f}")
    rows.append("")
    rows.append("more hash tables -> more candidates scored -> higher recall;")
    rows.append("the knob trades Hits@1 against the scored fraction (paper §7.2)")
    report("Extension - LSH blocking tradeoff", rows, "extension_blocking.txt")

    # more tables scores more pairs and recovers more of the full search
    assert results["lsh_t8"][1] >= results["lsh_t2"][1]
    assert results["lsh_t8"][0] >= results["lsh_t2"][0] - 0.02
    # blocking prunes the candidate space
    assert results["lsh_t4"][1] < 1.0