"""Table 3: sample quality of RAS vs PRS vs IDS on EN-FR."""

from repro.datagen import source_pair
from repro.kg import (
    clustering_coefficient,
    degree_distribution,
    isolated_entity_ratio,
    js_divergence,
)
from repro.sampling import ids_sample, prs_sample, ras_sample

from _common import BENCH_SIZE, report


def bench_table3_sampling_methods(benchmark):
    def run():
        source = source_pair("EN-FR", n_entities=int(BENCH_SIZE * 3), seed=0)
        n = BENCH_SIZE
        return source, {
            "RAS": ras_sample(source, n, seed=0),
            "PRS": prs_sample(source, n, seed=0),
            "IDS": ids_sample(source, n, seed=0),
        }

    source, samples = benchmark.pedantic(run, rounds=1, iterations=1)

    reference = degree_distribution(source.kg1)
    rows = [f"{'method':8s} {'deg':>6s} {'JS':>7s} {'isolates':>9s} {'cluster':>8s}"]
    rows.append(
        f"{'source':8s} {source.kg1.average_degree():6.2f} {'—':>7s} "
        f"{isolated_entity_ratio(source.kg1):9.1%} "
        f"{clustering_coefficient(source.kg1):8.3f}"
    )
    measured = {}
    for method, pair in samples.items():
        js = js_divergence(reference, degree_distribution(pair.kg1))
        iso = isolated_entity_ratio(pair.kg1)
        measured[method] = (js, iso)
        rows.append(
            f"{method:8s} {pair.kg1.average_degree():6.2f} {js:7.1%} "
            f"{iso:9.1%} {clustering_coefficient(pair.kg1):8.3f}"
        )
    rows.append("")
    rows.append("paper (EN-FR-15K V1, EN side): RAS deg 0.27, 85.5% isolates;")
    rows.append("PRS deg 1.20, 68.9% isolates; IDS deg 6.31, JS 2.0%, 0 isolates")
    rows.append("expected shape: IDS << PRS << RAS on JS and isolation")
    report("Table 3 - sampling methods", rows, "table3.txt")

    assert measured["IDS"][0] < measured["PRS"][0] < measured["RAS"][0]
    assert measured["IDS"][1] < min(measured["PRS"][1], measured["RAS"][1])
