"""Table 7: LogMap / PARIS / best OpenEA approach, P/R/F1, V1 families."""

from repro.alignment import prf_metrics
from repro.conventional import LogMap, Paris

from _common import FAMILY_ORDER, dataset, fold, report, trained

BEST_OPENEA = {"EN-FR": "RDGCN", "EN-DE": "RDGCN", "D-W": "BootEA", "D-Y": "RDGCN"}

PAPER_F1 = {  # V1 15K: (LogMap, PARIS, best OpenEA)
    "EN-FR": (.771, .903, .755),
    "EN-DE": (.813, .935, .830),
    "D-W": (None, .734, .572),
    "D-Y": (.957, .884, .931),
}


def bench_table7_conventional(benchmark):
    def run():
        out = {}
        for family in FAMILY_ORDER:
            pair = dataset(family, "V1")
            gold = set(pair.alignment)
            logmap = prf_metrics(LogMap().align(pair).alignment, gold)
            paris = prf_metrics(Paris().align(pair).alignment, gold)
            approach = trained(BEST_OPENEA[family], family, "V1")
            split = fold(family, "V1")
            hits1 = approach.evaluate(split.test, hits_at=(1,)).hits_at(1)
            out[family] = (logmap, paris, hits1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'dataset':8s} {'system':18s} {'P':>6s} {'R':>6s} {'F1':>6s}  {'paper F1':>8s}"]
    for family in FAMILY_ORDER:
        logmap, paris, hits1 = results[family]
        p_log, p_par, p_oea = PAPER_F1[family]
        rows.append(
            f"{family:8s} {'LogMap':18s} {logmap.precision:6.3f} "
            f"{logmap.recall:6.3f} {logmap.f1:6.3f}  "
            f"{p_log if p_log is not None else float('nan'):8.3f}"
        )
        rows.append(
            f"{family:8s} {'PARIS':18s} {paris.precision:6.3f} "
            f"{paris.recall:6.3f} {paris.f1:6.3f}  {p_par:8.3f}"
        )
        best = BEST_OPENEA[family]
        rows.append(
            f"{family:8s} {'OpenEA (' + best + ')':18s} {hits1:6.3f} "
            f"{hits1:6.3f} {hits1:6.3f}  {p_oea:8.3f}"
        )
    rows.append("")
    rows.append("expected shape: PARIS leads on most families; LogMap outputs")
    rows.append("nothing on D-W (numeric schema); embedding approaches show no")
    rows.append("clear superiority over the conventional systems (paper §6.3)")
    report("Table 7 - conventional vs embedding", rows, "table7.txt")

    # LogMap fails on D-W
    assert results["D-W"][0].f1 == 0.0
    # PARIS is competitive everywhere it runs (D-W is its hardest family)
    for family in FAMILY_ORDER:
        assert results[family][1].f1 > 0.45
    # conventional not dominated by embeddings (paper's headline)
    wins = sum(
        1 for family in FAMILY_ORDER
        if results[family][1].f1 >= results[family][2]
    )
    assert wins >= 3, "PARIS should match or beat OpenEA on most families"
