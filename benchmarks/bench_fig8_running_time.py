"""Figure 8: training time comparison of the 12 approaches (V1).

Timing comes from the telemetry each ``fit`` records (``TrainingLog.
epoch_seconds`` and ``peak_rss_bytes``, populated by the ``repro.obs``
spans) rather than re-timing the runs externally, so the numbers match
what ``repro obs-report`` shows for a traced run.
"""

from _common import APPROACH_ORDER, report, trained


def bench_fig8_running_time(benchmark):
    def run():
        return {
            name: trained(name, "EN-FR", "V1").log
            for name in APPROACH_ORDER
        }

    logs = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = {name: sum(log.epoch_seconds) or log.train_seconds
               for name, log in logs.items()}

    rows = [f"{'approach':9s} {'train s':>8s} {'s/epoch':>8s} "
            f"{'peak MB':>8s}  bar"]
    peak = max(seconds.values())
    for name in APPROACH_ORDER:
        log = logs[name]
        per_epoch = (seconds[name] / len(log.epoch_seconds)
                     if log.epoch_seconds else 0.0)
        rss_mb = log.peak_rss_bytes / 1024 / 1024
        bar = "#" * max(1, int(40 * seconds[name] / peak))
        rows.append(f"{name:9s} {seconds[name]:8.2f} {per_epoch:8.3f} "
                    f"{rss_mb:8.0f}  {bar}")
    rows.append("")
    rows.append("paper: BootEA and RSN4EA are the slowest (truncated sampling +")
    rows.append("bootstrapping; multi-hop paths); MTransE and GCNAlign the fastest")
    report("Figure 8 - running time (EN-FR V1)", rows, "fig8.txt")

    for name, log in logs.items():
        assert len(log.epoch_seconds) == log.epochs_run, \
            f"{name}: epoch_seconds not populated by fit()"
    cheap = min(seconds["MTransE"], seconds["GCNAlign"])
    assert seconds["RSN4EA"] > cheap, "path-based training should cost more"
    assert seconds["BootEA"] > seconds["MTransE"]
