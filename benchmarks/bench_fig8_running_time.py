"""Figure 8: training time comparison of the 12 approaches (V1)."""

from _common import APPROACH_ORDER, report, trained


def bench_fig8_running_time(benchmark):
    def run():
        return {
            name: trained(name, "EN-FR", "V1").log.train_seconds
            for name in APPROACH_ORDER
        }

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'approach':9s} {'train s':>8s}  bar"]
    peak = max(seconds.values())
    for name in APPROACH_ORDER:
        bar = "#" * max(1, int(40 * seconds[name] / peak))
        rows.append(f"{name:9s} {seconds[name]:8.2f}  {bar}")
    rows.append("")
    rows.append("paper: BootEA and RSN4EA are the slowest (truncated sampling +")
    rows.append("bootstrapping; multi-hop paths); MTransE and GCNAlign the fastest")
    report("Figure 8 - running time (EN-FR V1)", rows, "fig8.txt")

    cheap = min(seconds["MTransE"], seconds["GCNAlign"])
    assert seconds["RSN4EA"] > cheap, "path-based training should cost more"
    assert seconds["BootEA"] > seconds["MTransE"]
