"""Figure 2: degree distributions of legacy-style datasets vs ours.

The paper shows DBP15K/WK3L are much denser than their source KG, while
the IDS-sampled dataset matches it.  We regenerate the comparison with a
degree-biased sample standing in for the legacy datasets.
"""

from repro.kg import degree_distribution, js_divergence
from repro.sampling import degree_biased_sample, ids_sample

from _common import BENCH_SIZE, report


def bench_fig2_degree_distributions(benchmark):
    from repro.datagen import source_pair

    def run():
        source = source_pair("EN-FR", n_entities=int(BENCH_SIZE * 2.5), seed=0)
        n = BENCH_SIZE
        legacy = degree_biased_sample(source, n, bias=2.0, seed=0)
        ours = ids_sample(source, n, seed=0)
        return source, legacy, ours

    source, legacy, ours = benchmark.pedantic(run, rounds=1, iterations=1)

    reference = degree_distribution(source.kg1)
    rows = [
        f"{'KG':22s} {'#rel triples':>12s} {'#entities':>10s} {'avg deg':>8s} {'JS':>7s}",
    ]
    for label, pair in (
        ("source (DBpedia-like)", source),
        ("legacy-style (biased)", legacy),
        ("ours (IDS)", ours),
    ):
        js = js_divergence(reference, degree_distribution(pair.kg1))
        rows.append(
            f"{label:22s} {len(pair.kg1.relation_triples):12d} "
            f"{pair.kg1.num_entities:10d} {pair.kg1.average_degree():8.2f} {js:7.1%}"
        )
    rows.append("")
    rows.append("paper: DBpedia(EN) deg 6.93 | DBP15K 13.49, WK3L 22.77 (biased)")
    rows.append("       EN-FR-15K(V1) 6.31 (IDS matches the source)")
    rows.append("expected shape: biased sample much denser than source; IDS close, low JS")
    report("Figure 2 - degree distributions", rows, "fig2.txt")

    assert legacy.kg1.average_degree() > 1.3 * ours.kg1.average_degree()
