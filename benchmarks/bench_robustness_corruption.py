"""Robustness under data corruption (docs/robustness.md).

Sweeps the three corruption axes of :mod:`repro.datagen.corruption` —
dangling entities, noisy alignment links, missing attribute triples —
over three representative approaches: MTransE (relational family),
GCNAlign (GNN family) and IMUSE (literal family).  Each cell reports
clean-protocol Hits@1 next to the NIL-aware metrics (dangling-detection
F1, matchable Hits@1 and full-candidate-set MRR under a calibrated
abstention threshold).

The paper evaluates on datasets whose alignment is complete and exact;
this bench quantifies how far each approach family degrades when that
assumption is broken, and anchors the ledger with the smoke-gate
recipe (easy pair + literal approach) whose dangling F1 the regression
gate guards.
"""

from functools import lru_cache

from repro import benchmark_pair
from repro.approaches import ApproachConfig, get_approach
from repro.datagen import smoke_pair
from repro.datagen.corruption import dangling_sources

from _common import BENCH_SIZE, make_config, record_bench, report

APPROACHES = ["MTransE", "GCNAlign", "IMUSE"]

# axis -> benchmark_pair keyword, swept rates (0.0 is the shared clean cell)
AXES = [
    ("dangling", "dangling_rate", (0.1, 0.2)),
    ("link_noise", "link_noise_rate", (0.1, 0.2)),
    ("attr_missing", "attr_missing_rate", (0.3, 0.6)),
]


@lru_cache(maxsize=None)
def _pair(**rates):
    return benchmark_pair("EN-FR", size=BENCH_SIZE, seed=0, method="direct",
                          **rates)


@lru_cache(maxsize=None)
def _cell(name: str, **rates) -> dict:
    """Train ``name`` on the corrupted pair and score one table cell."""
    pair = _pair(**rates)
    split = pair.five_fold_splits(seed=0)[0]
    approach = get_approach(name, make_config(valid_every=0))
    approach.fit(pair, split)
    out = {"hits1": approach.evaluate(split.test, hits_at=(1,)).hits_at(1)}
    dangling = sorted(dangling_sources(pair))
    if dangling:
        half = len(dangling) // 2
        threshold = approach.calibrate_abstention(split.valid,
                                                  dangling[:half])
        nil = approach.evaluate_dangling(split.test, dangling[half:],
                                         threshold=threshold)
        out.update({"f1": nil.f1, "h1m": nil.hits1_matchable,
                    "mrrm": nil.mrr_matchable})
    return out


def _anchor() -> dict:
    """The smoke-gate recipe: easy pair + literal approach.

    This is the configuration ``repro robustness --check`` gates in CI
    (F1 >= 0.5, matchable Hits@1 within 5% of clean); the bench records
    its scalars so `repro obs-gate` tracks drift across sessions.
    """
    pair = smoke_pair(n_entities=400, seed=0, dangling_rate=0.2)
    split = pair.split(train_ratio=0.3, seed=0)
    approach = get_approach(
        "IMUSE", ApproachConfig(dim=48, epochs=30, seed=0, valid_every=0))
    approach.fit(pair, split)
    clean = approach.evaluate(split.test, hits_at=(1,)).hits_at(1)
    dangling = sorted(dangling_sources(pair))
    half = len(dangling) // 2
    threshold = approach.calibrate_abstention(split.valid, dangling[:half])
    nil = approach.evaluate_dangling(split.test, dangling[half:],
                                     threshold=threshold)
    return {"hits1": clean, "f1": nil.f1, "h1m": nil.hits1_matchable,
            "mrrm": nil.mrr_matchable}


def _fmt(cell: dict) -> str:
    nil = (f" F1={cell['f1']:.3f} H@1m={cell['h1m']:.3f} "
           f"MRRm={cell['mrrm']:.3f}" if "f1" in cell else
           " " + "-".rjust(24))
    return f"hits@1={cell['hits1']:.3f}{nil}"


def bench_robustness_corruption(benchmark):
    def run():
        grid = {}
        for name in APPROACHES:
            grid[(name, "clean", 0.0)] = _cell(name)
            for axis, keyword, rates in AXES:
                for rate in rates:
                    grid[(name, axis, rate)] = _cell(name, **{keyword: rate})
        return grid, _anchor()

    grid, anchor = benchmark.pedantic(run, rounds=1, iterations=1)

    # scalars first: report() would otherwise claim the artifact name
    # with a scalar-free record and the dedupe would drop these
    record_bench("bench_robustness_corruption", scalars={
        "hits_at_1": anchor["hits1"],
        "dangling_f1": anchor["f1"],
        "hits_at_1_matchable": anchor["h1m"],
        "mrr_matchable": anchor["mrrm"],
    })

    rows = []
    for name in APPROACHES:
        rows.append(f"{name} (clean: {_fmt(grid[(name, 'clean', 0.0)])})")
        for axis, _, rates in AXES:
            for rate in rates:
                rows.append(f"  {axis:>12s}={rate:<4g} "
                            f"{_fmt(grid[(name, axis, rate)])}")
    rows.append("")
    rows.append(f"smoke anchor (IMUSE, easy pair, dangling 0.2): "
                f"{_fmt(anchor)}")
    rows.append("expected shape: corruption never helps; dangling hurts")
    rows.append("recall-oriented metrics most, attribute loss hurts the")
    rows.append("literal family (IMUSE) most (docs/robustness.md)")
    # filename stem matches the record_bench name above, so report()'s
    # own (scalar-free) record_bench call is deduped away
    report("Robustness - corruption axes x approach families", rows,
           "bench_robustness_corruption.txt")

    # the anchor is the smoke-gate contract; the grid cells at bench
    # scale are informational (weak models separate dangling poorly)
    assert anchor["f1"] >= 0.5, f"anchor dangling F1 {anchor['f1']:.3f}"
    assert anchor["h1m"] >= 0.95 * anchor["hits1"], \
        f"abstention cost too high: {anchor['h1m']:.3f} vs {anchor['hits1']:.3f}"
    for (name, axis, rate), cell in grid.items():
        assert 0.0 <= cell["hits1"] <= 1.0
        if "f1" in cell:
            assert 0.0 <= cell["f1"] <= 1.0
    # dangling corruption removes counterparts, so clean-protocol Hits@1
    # (computed on the surviving matchable pairs) must stay evaluable
    for name in APPROACHES:
        assert grid[(name, "dangling", 0.2)]["hits1"] >= 0.0
