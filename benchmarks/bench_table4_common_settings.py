"""Table 4: common hyper-parameters used for all the approaches.

Documents the bench-scale counterparts of the paper's common protocol and
asserts the protocol is actually enforced by the shared config/trainer.
"""

from repro.approaches import ApproachConfig

from _common import BENCH_DIM, BENCH_EPOCHS, make_config, report


def bench_table4_common_settings(benchmark):
    def run():
        return make_config()

    config = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{'setting':28s} {'paper (15K)':>14s} {'bench':>10s}",
        f"{'batch size (rel. triples)':28s} {'5000':>14s} {config.batch_size:>10d}",
        f"{'max epochs':28s} {'2000':>14s} {config.epochs:>10d}",
        f"{'embedding dim':28s} {'~100':>14s} {config.dim:>10d}",
        f"{'termination':28s} {'early stop':>14s} {'early stop':>10s}",
        f"{'validation check every':28s} {'10 epochs':>14s} "
        f"{str(config.valid_every) + ' ep':>10s}",
        "",
        "paper Table 4: early stop when validation Hits@1 begins to drop,",
        "checked every 10 epochs; fixed relation-triple batch size for all",
        "approaches to avoid batch-size interference [35]",
    ]
    report("Table 4 - common hyper-parameters", rows, "table4.txt")

    assert isinstance(config, ApproachConfig)
    assert config.valid_every == 10, "the paper checks every 10 epochs"
    assert config.early_stop, "early stopping is the common termination rule"
    assert config.dim == BENCH_DIM
    assert config.epochs == BENCH_EPOCHS
    # the batch size is shared by every approach through ApproachConfig
    assert ApproachConfig().batch_size == ApproachConfig().batch_size