"""Training-step throughput: dense vs sparse gradient path.

Measures the per-step wall-clock cost of a TransE training step (gather
+ margin ranking loss + optimizer update) at several entity-table
scales, with the row-sparse gradient path toggled on and off.  The
dense path pays O(|E|) per step (full-table gradient allocation and a
full-table optimizer update); the sparse path pays O(batch).

Writes ``benchmarks/reports/BENCH_train_throughput.json`` with median
per-step milliseconds, steps/sec and the sparse-over-dense speedup for
each scale.  The acceptance target is a >= 5x median step-time speedup
at 10k entities / batch 256.

Run standalone (full scales)::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py

or as a quick smoke (tiny scales, used by the tier-1 regression test)::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.autodiff import SGD, Adam, set_sparse_gradients
from repro.embedding import TransE, margin_ranking_loss, uniform_corrupt

from _common import report_path, write_json_report

REPORT_PATH = report_path("BENCH_train_throughput.json")

FULL_SCALES = [(1_000, 256), (10_000, 256)]
SMOKE_SCALES = [(500, 64)]
N_RELATIONS = 20
DIM = 64


def _make_batches(n_entities: int, batch_size: int, steps: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        np.stack([
            rng.integers(0, n_entities, batch_size),
            rng.integers(0, N_RELATIONS, batch_size),
            rng.integers(0, n_entities, batch_size),
        ], axis=1)
        for _ in range(steps)
    ]


def _run_steps(model, optimizer, batches, n_entities, seed):
    """Run the training steps, returning (per-step seconds, final loss)."""
    negative_rng = np.random.default_rng(seed)
    timings = []
    loss_value = float("nan")
    for batch in batches:
        negatives = uniform_corrupt(batch, n_entities, 1, negative_rng)
        started = time.perf_counter()
        optimizer.zero_grad()
        positive = model.score(batch[:, 0], batch[:, 1], batch[:, 2])
        negative = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        loss = margin_ranking_loss(positive, negative)
        loss.backward()
        optimizer.step()
        timings.append(time.perf_counter() - started)
        loss_value = float(loss.data)
    return np.array(timings), loss_value


def measure_scale(
    n_entities: int,
    batch_size: int,
    steps: int,
    warmup: int,
    optimizer_name: str = "adam",
    seed: int = 0,
) -> dict:
    """Time dense and sparse paths on identical batches/seeds."""
    batches = _make_batches(n_entities, batch_size, warmup + steps, seed)
    results = {}
    for label, enabled in (("dense", False), ("sparse", True)):
        previous = set_sparse_gradients(enabled)
        try:
            model = TransE(n_entities, N_RELATIONS, DIM, np.random.default_rng(seed))
            if optimizer_name == "adam":
                optimizer = Adam(model.parameters(), lr=0.001)
            else:
                optimizer = SGD(model.parameters(), lr=0.01)
            timings, loss = _run_steps(
                model, optimizer, batches, n_entities, seed=seed + 1
            )
        finally:
            set_sparse_gradients(previous)
        measured = timings[warmup:]
        median_s = float(np.median(measured))
        results[label] = {
            "median_step_ms": median_s * 1e3,
            "mean_step_ms": float(measured.mean()) * 1e3,
            "steps_per_sec": (1.0 / median_s) if median_s > 0 else float("inf"),
            "final_loss": loss,
        }
    results["speedup"] = (
        results["dense"]["median_step_ms"] / results["sparse"]["median_step_ms"]
    )
    results["n_entities"] = n_entities
    results["batch_size"] = batch_size
    return results


def run(smoke: bool = False, steps: int | None = None) -> dict:
    scales = SMOKE_SCALES if smoke else FULL_SCALES
    if steps is None:
        steps = 10 if smoke else 30
    warmup = 2 if smoke else 5
    # smoke mode uses SGD: dense/sparse are then *exactly* equivalent at
    # any row coverage, so final losses double as a correctness check
    optimizer_name = "sgd" if smoke else "adam"
    report = {
        "bench": "train_throughput",
        "mode": "smoke" if smoke else "full",
        "optimizer": optimizer_name,
        "dim": DIM,
        "n_relations": N_RELATIONS,
        "steps_timed": steps,
        "warmup_steps": warmup,
        "scales": [],
    }
    for n_entities, batch_size in scales:
        result = measure_scale(
            n_entities, batch_size, steps, warmup, optimizer_name
        )
        report["scales"].append(result)
        print(
            f"  entities={n_entities:>6d} batch={batch_size:<4d} "
            f"dense={result['dense']['median_step_ms']:8.2f} ms/step  "
            f"sparse={result['sparse']['median_step_ms']:8.2f} ms/step  "
            f"speedup={result['speedup']:6.1f}x",
            file=sys.__stdout__,
        )
    write_json_report(REPORT_PATH, report)
    print(f"  wrote {REPORT_PATH}", file=sys.__stdout__)
    return report


def bench_train_throughput(benchmark):
    """pytest-benchmark entry: full scales, asserts the 5x acceptance bar."""
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    largest = report["scales"][-1]
    assert largest["n_entities"] == 10_000
    assert largest["speedup"] >= 5.0, (
        f"sparse path speedup {largest['speedup']:.1f}x < 5x at 10k entities"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny scales + SGD parity check (fast; used by tier-1 tests)",
    )
    parser.add_argument(
        "--steps", type=int, default=None,
        help="timed steps per configuration (default: 30 full, 10 smoke)",
    )
    arguments = parser.parse_args(argv)
    report = run(smoke=arguments.smoke, steps=arguments.steps)
    if arguments.smoke:
        for scale in report["scales"]:
            dense_loss = scale["dense"]["final_loss"]
            sparse_loss = scale["sparse"]["final_loss"]
            if abs(dense_loss - sparse_loss) > 1e-9:
                print(
                    f"FAIL: smoke loss parity broken: dense={dense_loss!r} "
                    f"sparse={sparse_loss!r}", file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
