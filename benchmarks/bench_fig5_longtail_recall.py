"""Figure 5: recall by alignment degree (long-tail analysis) on EN-FR V1."""

import numpy as np

from repro.analysis import DEGREE_BUCKETS, recall_by_degree

from _common import dataset, fold, report, trained

PROBES = ["MTransE", "BootEA", "RSN4EA", "MultiKE", "RDGCN"]


def bench_fig5_longtail_recall(benchmark):
    def run():
        pair = dataset("EN-FR", "V1")
        split = fold("EN-FR", "V1")
        results = {}
        for name in PROBES:
            approach = trained(name, "EN-FR", "V1")
            predicted = approach.predict(split.test)
            results[name] = recall_by_degree(pair, split.test, predicted)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    labels = ["[1,6)", "[6,11)", "[11,16)", "[16,inf)"]
    counts = [results[PROBES[0]][bucket][1] for bucket in DEGREE_BUCKETS]
    rows = [f"{'approach':9s} " + " ".join(f"{label:>9s}" for label in labels)]
    rows.append(f"{'#pairs':9s} " + " ".join(f"{count:9d}" for count in counts))
    for name in PROBES:
        recalls = [results[name][bucket][0] for bucket in DEGREE_BUCKETS]
        rows.append(f"{name:9s} " + " ".join(f"{r:9.3f}" for r in recalls))
    rows.append("")
    rows.append("paper: recall climbs with alignment degree for relation-based")
    rows.append("approaches; literal-using ones (MultiKE, RDGCN) stay flatter")
    report("Figure 5 - recall vs alignment degree", rows, "fig5.txt")

    # relation-based approaches should be lopsided: high-degree >> long tail
    for name in ("BootEA", "RSN4EA"):
        recalls = [results[name][bucket][0] for bucket in DEGREE_BUCKETS
                   if results[name][bucket][1] >= 5]
        if len(recalls) >= 2:
            assert recalls[-1] >= recalls[0] - 0.05, (
                f"{name} should not collapse on high-degree entities"
            )
    # long-tail entities dominate the dataset (paper: 'most entities have
    # relatively few relation triples'); at bench scale the two lowest
    # buckets together hold the majority
    assert counts[0] + counts[1] > counts[2] + counts[3], (
        "low-degree buckets should dominate"
    )
    assert np.isfinite(list(results[PROBES[0]].values())[0][0])
