"""Ablation of IDS's design choices (DESIGN.md per-experiment index).

Algorithm 1 weights entity deletion by inverse PageRank so influential
entities survive.  This bench removes that weighting (uniform deletion
within each degree group) and measures the fidelity cost.
"""

import numpy as np

from repro.datagen import source_pair
from repro.kg import degree_distribution, isolated_entity_ratio, js_divergence
from repro.sampling import ids_sample
from repro.sampling import ids as ids_module

from _common import BENCH_SIZE, report


def _uniform_weights_patch():
    """Monkey-patched pagerank: every entity equally deletable."""

    def uniform(kg, **kwargs):
        entities = sorted(kg.entities)
        return {entity: 1.0 / len(entities) for entity in entities}

    return uniform


def bench_ablation_ids_pagerank(benchmark):
    def run():
        source = source_pair("EN-FR", n_entities=int(BENCH_SIZE * 3), seed=0)
        reference = degree_distribution(source.kg1)
        with_pr = ids_sample(source, BENCH_SIZE, seed=0)
        original = ids_module.pagerank
        ids_module.pagerank = _uniform_weights_patch()
        try:
            without_pr = ids_sample(source, BENCH_SIZE, seed=0)
        finally:
            ids_module.pagerank = original
        return {
            "with": (
                js_divergence(reference, degree_distribution(with_pr.kg1)),
                isolated_entity_ratio(with_pr.kg1),
                with_pr.kg1.average_degree(),
            ),
            "without": (
                js_divergence(reference, degree_distribution(without_pr.kg1)),
                isolated_entity_ratio(without_pr.kg1),
                without_pr.kg1.average_degree(),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'variant':22s} {'JS':>7s} {'isolates':>9s} {'deg':>6s}"]
    for label, key in (("IDS (PageRank weights)", "with"),
                       ("IDS (uniform deletion)", "without")):
        js, iso, deg = results[key]
        rows.append(f"{label:22s} {js:7.1%} {iso:9.1%} {deg:6.2f}")
    rows.append("")
    rows.append("Algorithm 1 line 8: deleting low-PageRank entities first keeps")
    rows.append("the influential structure; uniform deletion degrades density")
    report("Ablation - IDS PageRank weighting", rows, "ablation_ids.txt")

    # the PageRank-weighted variant preserves density at least as well
    assert results["with"][2] >= results["without"][2] - 0.15
    assert np.isfinite(results["without"][0])
