"""Figure 6: Hits@1 of attribute-using approaches with vs without
attribute embedding (D-W and D-Y, V1)."""

from repro.approaches import get_approach

from _common import make_config, dataset, fold, report, trained

PROBES = ["JAPE", "GCNAlign", "KDCoE", "AttrE", "IMUSE", "MultiKE", "RDGCN"]


def bench_fig6_attribute_ablation(benchmark):
    def run():
        out = {}
        for family in ("D-W", "D-Y"):
            split = fold(family, "V1")
            for name in PROBES:
                with_attr = trained(name, family, "V1")
                without = get_approach(name, make_config(use_attributes=False))
                without.fit(dataset(family, "V1"), split)
                out[(name, family)] = (
                    with_attr.evaluate(split.test, hits_at=(1,)).hits_at(1),
                    without.evaluate(split.test, hits_at=(1,)).hits_at(1),
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for family in ("D-W", "D-Y"):
        rows.append(f"--- {family} (V1) ---")
        rows.append(f"{'approach':9s} {'w/ attr':>8s} {'w/o attr':>9s} {'delta':>7s}")
        for name in PROBES:
            with_attr, without = results[(name, family)]
            rows.append(
                f"{name:9s} {with_attr:8.3f} {without:9.3f} "
                f"{with_attr - without:+7.3f}"
            )
    rows.append("")
    rows.append("paper: literal embedding (KDCoE/AttrE/MultiKE/RDGCN) brings large")
    rows.append("gains on D-Y; attribute *correlations* (JAPE/GCNAlign) bring little;")
    rows.append("on D-W the symbolic heterogeneity (numeric IDs) erases most gains")
    report("Figure 6 - attribute ablation", rows, "fig6.txt")

    # literal-based approaches gain clearly on D-Y
    literal_gains = [
        results[(name, "D-Y")][0] - results[(name, "D-Y")][1]
        for name in ("AttrE", "MultiKE", "RDGCN")
    ]
    assert sum(gain > 0 for gain in literal_gains) >= 2
    # attribute-correlation approaches gain much less than literal ones
    jape_gain = results[("JAPE", "D-Y")][0] - results[("JAPE", "D-Y")][1]
    assert jape_gain < max(literal_gains)
