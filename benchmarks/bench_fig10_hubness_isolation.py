"""Figure 10: hubness and isolation of nearest neighbors on D-Y V1."""

from repro.analysis import hubness_isolation

from _common import APPROACH_ORDER, fold, report, trained


def bench_fig10_hubness_isolation(benchmark):
    def run():
        split = fold("D-Y", "V1")
        sources = [a for a, _ in split.test]
        targets = [b for _, b in split.test]
        out = {}
        for name in APPROACH_ORDER:
            approach = trained(name, "D-Y", "V1")
            similarity = approach.similarity_between(sources, targets, metric="cosine")
            out[name] = hubness_isolation(similarity)
        return out

    proportions = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'approach':9s} {'0':>7s} {'1':>7s} {'[2,4]':>7s} {'>=5':>7s}"]
    for name in APPROACH_ORDER:
        p = proportions[name]
        rows.append(
            f"{name:9s} {p['0']:7.1%} {p['1']:7.1%} {p['[2,4]']:7.1%} {p['>=5']:7.1%}"
        )
    rows.append("")
    rows.append("paper: a large share of targets NEVER appear as a top-1 neighbor")
    rows.append("(isolation); approaches with fewer isolated+hub entities, e.g.")
    rows.append("MultiKE and RDGCN, achieve the leading Hits@1")
    report("Figure 10 - hubness & isolation (D-Y V1)", rows, "fig10.txt")

    for name in APPROACH_ORDER:
        assert proportions[name]["0"] > 0.0, "isolation should exist"
    top = min(proportions[n]["0"] for n in ("MultiKE", "RDGCN"))
    weak = max(proportions[n]["0"] for n in ("MTransE", "IPTransE"))
    assert top < weak, "leading approaches should isolate fewer targets"
