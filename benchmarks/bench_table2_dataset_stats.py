"""Table 2: statistics of the generated datasets (4 families x V1/V2)."""

from repro.kg import dataset_summary

from _common import FAMILY_ORDER, dataset, report


def bench_table2_dataset_stats(benchmark):
    def run():
        stats = {}
        for family in FAMILY_ORDER:
            for version in ("V1", "V2"):
                pair = dataset(family, version)
                stats[(family, version)] = (
                    dataset_summary(pair.kg1), dataset_summary(pair.kg2)
                )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{'dataset':14s} {'KG':4s} {'#rel':>5s} {'#attr':>6s} "
        f"{'#rel tr.':>9s} {'#attr tr.':>10s} {'deg':>6s}"
    ]
    for (family, version), (summary1, summary2) in stats.items():
        for side, summary in (("KG1", summary1), ("KG2", summary2)):
            rows.append(
                f"{family + '-' + version:14s} {side:4s} "
                f"{summary['relations']:5.0f} {summary['attributes']:6.0f} "
                f"{summary['rel_triples']:9.0f} {summary['attr_triples']:10.0f} "
                f"{summary['avg_degree']:6.2f}"
            )
    rows.append("")
    rows.append("expected shape (paper Table 2): V2 roughly twice as dense as V1;")
    rows.append("D-Y KG2 (YAGO) has far fewer relations than KG1; D-W KG2 uses P-IDs")
    report("Table 2 - dataset statistics", rows, "table2.txt")

    for family in FAMILY_ORDER:
        v1 = stats[(family, "V1")][0]["avg_degree"]
        v2 = stats[(family, "V2")][0]["avg_degree"]
        assert v2 > 1.4 * v1, f"{family}: V2 should be ~2x denser"
    assert stats[("D-Y", "V1")][1]["relations"] < stats[("D-Y", "V1")][0]["relations"]
