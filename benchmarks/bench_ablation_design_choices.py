"""§5.2 ablations: negative sampling for MTransE, bootstrapping for BootEA."""

from repro.approaches import BootEA, MTransE

from _common import make_config, dataset, fold, report


def bench_ablation_negative_sampling(benchmark):
    """Paper: adding negative sampling raises MTransE's Hits@1 on EN-FR
    (0.247 -> 0.271)."""

    def run():
        pair = dataset("EN-FR", "V1")
        split = fold("EN-FR", "V1")
        scores = {"plain": [], "sampled": []}
        for seed in (0, 1, 2):  # averaged: the gap is larger than seed noise
            plain = MTransE(make_config(seed=seed))
            plain.fit(pair, split)
            scores["plain"].append(
                plain.evaluate(split.test, hits_at=(1,)).hits_at(1)
            )
            sampled = MTransE(make_config(seed=seed), negative_sampling=True)
            sampled.fit(pair, split)
            scores["sampled"].append(
                sampled.evaluate(split.test, hits_at=(1,)).hits_at(1)
            )
        return (
            sum(scores["plain"]) / len(scores["plain"]),
            sum(scores["sampled"]) / len(scores["sampled"]),
        )

    plain, sampled = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"MTransE (positives only)     H@1 = {plain:.3f}",
        f"MTransE + negative sampling  H@1 = {sampled:.3f}",
        "",
        "paper: 0.247 -> 0.271 on EN-FR-15K (V1)",
    ]
    report("Ablation - negative sampling (MTransE)", rows, "ablation_neg.txt")
    assert sampled > plain, "negative sampling should lift MTransE"


def bench_ablation_bootstrapping(benchmark):
    """Paper: BootEA's self-training adds > 0.086 Hits@1 on V1 datasets."""

    def run():
        pair = dataset("EN-FR", "V1")
        split = fold("EN-FR", "V1")
        with_boot = BootEA(make_config(), bootstrap=True)
        with_boot.fit(pair, split)
        without = BootEA(make_config(), bootstrap=False)
        without.fit(pair, split)
        return (
            with_boot.evaluate(split.test, hits_at=(1,)).hits_at(1),
            without.evaluate(split.test, hits_at=(1,)).hits_at(1),
        )

    with_boot, without = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"BootEA with bootstrapping    H@1 = {with_boot:.3f}",
        f"BootEA without bootstrapping H@1 = {without:.3f}",
        "",
        "paper: self-training adds > 0.086 Hits@1 on the V1 datasets",
    ]
    report("Ablation - bootstrapping (BootEA)", rows, "ablation_boot.txt")
    assert with_boot > without, "bootstrapping should lift BootEA"
