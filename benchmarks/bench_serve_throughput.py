"""Serving bench: exact vs LSH vs IVF throughput and recall at scale.

Not a paper table — it quantifies the serving layer the ROADMAP asks
for.  The workload mimics trained alignment embeddings (clustered unit
vectors; real entity embeddings group by type/community, which is what
both approximate indexes exploit) at several entity counts.

Two measurements per index:

* **raw search** — one ``index.search`` call over every source entity;
  the speedup column compares this against exact full-pairwise search
  on the same engine-free path (best of two runs each, so machine
  noise hits all indexes alike);
* **served traffic** — the same index behind a
  :class:`repro.serve.QueryEngine` with micro-batching and an LRU
  cache, so the p50/p95/p99 latency, QPS and cache hit-rate come from
  ``repro.serve.metrics`` — the numbers a deployment would report.

Scale knobs (environment variables):

* ``REPRO_SERVE_SCALES`` — comma-separated entity counts
  (default ``2000,10000``; ``make serve-bench`` runs the 2000 smoke)
* ``REPRO_SERVE_DIM``    — embedding dimension (default 64)

The 5x-speedup assertions only apply at scales >= 5000 entities; below
that the exact matmul is too cheap for candidate pruning to pay off.
"""

import os
import time

import numpy as np

from repro.serve import (
    QueryEngine,
    StoredEmbeddings,
    make_index,
    recall_vs_exact,
)

from _common import report

SCALES = [int(s) for s in
          os.environ.get("REPRO_SERVE_SCALES", "2000,10000").split(",")]
DIM = int(os.environ.get("REPRO_SERVE_DIM", "64"))
K = 10
ENGINE_SAMPLE = 2000  # entities routed through the engine for telemetry
CACHE_REPLAY = 500  # head-of-distribution entities re-queried for cache hits
SPEEDUP_SCALE = 5000  # assert the 5x criterion only at or above this

# serving-tuned configurations (class defaults lean toward recall);
# 5 tables keeps recall ~0.94 on this workload while leaving wide
# margin on the 5x criterion, which is the timing-noise-sensitive one
INDEX_CONFIGS = {
    "exact": {},
    "lsh": {"n_bits": 6, "n_tables": 5, "probes": 0},
    "ivf": {},
}


def _world(n: int, dim: int, seed: int = 0) -> StoredEmbeddings:
    """Clustered source/target embeddings shaped like a trained run."""
    rng = np.random.default_rng(seed)
    n_centers = max(4, n // 100)
    centers = rng.normal(size=(n_centers, dim))
    target = centers[rng.integers(0, n_centers, size=n)] \
        + 0.35 * rng.normal(size=(n, dim))
    source = target + 0.15 * rng.normal(size=(n, dim))
    return StoredEmbeddings(
        version="bench",
        sources=[f"s{i}" for i in range(n)],
        targets=[f"t{i}" for i in range(n)],
        source_matrix=source,
        target_matrix=target,
    )


def _measure(stored: StoredEmbeddings, kind: str) -> dict:
    source = np.asarray(stored.source_matrix)
    target = np.asarray(stored.target_matrix)

    index = make_index(kind, **INDEX_CONFIGS[kind])
    started = time.perf_counter()
    index.build(target)
    build_seconds = time.perf_counter() - started

    index.search(source[:128], k=K)  # warm the search path
    search_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        index.search(source, k=K)
        search_seconds = min(search_seconds,
                             time.perf_counter() - started)

    recall = recall_vs_exact(index, source, target, k=K, sample=256, seed=0)

    # served traffic: micro-batched, cached, fully accounted
    engine = QueryEngine(stored, index=make_index(kind,
                                                  **INDEX_CONFIGS[kind]),
                         k=K, batch_size=256, cache_size=2 * CACHE_REPLAY)
    head = stored.sources[:min(ENGINE_SAMPLE, len(stored.sources))]
    engine.query_batch(head)  # unique queries: all cache misses
    engine.query_batch(head[-CACHE_REPLAY:])  # replayed: cache hits
    summary = engine.metrics.summary()
    summary.update(kind=kind, build_seconds=build_seconds,
                   search_seconds=search_seconds, recall=recall)
    return summary


def bench_serve_throughput(benchmark):
    def run():
        return {
            scale: {kind: _measure(_world(scale, DIM), kind)
                    for kind in INDEX_CONFIGS}
            for scale in SCALES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'scale':>6s} {'index':6s} {'build':>7s} {'search':>7s} "
            f"{'speedup':>7s} {'r@10':>5s} {'qps':>7s} "
            f"{'p50':>7s} {'p95':>7s} {'p99':>7s} {'cache':>6s}"]
    for scale, by_kind in results.items():
        exact_seconds = by_kind["exact"]["search_seconds"]
        for kind, s in by_kind.items():
            speedup = exact_seconds / s["search_seconds"]
            rows.append(
                f"{scale:6d} {kind:6s} {s['build_seconds']:6.2f}s "
                f"{s['search_seconds']:6.2f}s {speedup:6.1f}x "
                f"{s['recall']:5.3f} {s['qps']:7.0f} "
                f"{s['p50_ms']:5.1f}ms {s['p95_ms']:5.1f}ms "
                f"{s['p99_ms']:5.1f}ms {s['cache_hit_rate']:6.1%}"
            )
    rows.append("")
    rows.append("search/speedup: one index.search over every source entity")
    rows.append("(best of 2) vs exact full-pairwise; r@10 vs exact on 256")
    rows.append("sampled queries; qps/latency/cache: micro-batched engine")
    rows.append(f"traffic over {ENGINE_SAMPLE} entities with the "
                f"{CACHE_REPLAY} hottest replayed")
    report("Serving - exact vs LSH vs IVF throughput", rows,
           "serve_throughput.txt")

    for scale, by_kind in results.items():
        exact_seconds = by_kind["exact"]["search_seconds"]
        assert by_kind["exact"]["recall"] == 1.0
        for kind in ("lsh", "ivf"):
            s = by_kind[kind]
            assert s["recall"] >= 0.9, \
                f"{kind}@{scale}: recall {s['recall']:.3f} < 0.9"
            # telemetry must be populated for every run
            assert s["p99_ms"] >= s["p50_ms"] > 0
            assert s["cache_hit_rate"] > 0
            if scale >= SPEEDUP_SCALE:
                speedup = exact_seconds / s["search_seconds"]
                assert speedup >= 5.0, \
                    f"{kind}@{scale}: speedup {speedup:.1f}x < 5x"
