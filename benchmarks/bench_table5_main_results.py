"""Table 5: main cross-validation results of the 12 approaches.

Runs every approach on the four V1 families (plus EN-FR V2 for the
sparse-vs-dense comparison) and prints Hits@1 / Hits@5 / MRR next to the
paper's published numbers.  Absolute values differ (reduced scale,
synthetic substrate); the comparison targets the *ordering*.
"""

from _common import APPROACH_ORDER, FAMILY_ORDER, dataset, fold, report, trained

# Paper Table 5, Hits@1 on the 15K V1 datasets.
PAPER_HITS1_V1 = {
    "EN-FR": {"MTransE": .247, "IPTransE": .169, "JAPE": .262, "KDCoE": .581,
              "BootEA": .507, "GCNAlign": .338, "AttrE": .481, "IMUSE": .569,
              "SEA": .280, "RSN4EA": .393, "MultiKE": .749, "RDGCN": .755},
    "EN-DE": {"MTransE": .307, "IPTransE": .350, "JAPE": .288, "KDCoE": .529,
              "BootEA": .675, "GCNAlign": .481, "AttrE": .517, "IMUSE": .580,
              "SEA": .530, "RSN4EA": .587, "MultiKE": .756, "RDGCN": .830},
    "D-W":   {"MTransE": .259, "IPTransE": .232, "JAPE": .250, "KDCoE": .247,
              "BootEA": .572, "GCNAlign": .364, "AttrE": .299, "IMUSE": .327,
              "SEA": .360, "RSN4EA": .441, "MultiKE": .411, "RDGCN": .515},
    "D-Y":   {"MTransE": .463, "IPTransE": .313, "JAPE": .469, "KDCoE": .661,
              "BootEA": .739, "GCNAlign": .465, "AttrE": .668, "IMUSE": .392,
              "SEA": .500, "RSN4EA": .514, "MultiKE": .903, "RDGCN": .931},
}


def bench_table5_main_results(benchmark):
    def run():
        results = {}
        for family in FAMILY_ORDER:
            for name in APPROACH_ORDER:
                approach = trained(name, family, "V1")
                results[(name, family)] = approach.evaluate(
                    fold(family, "V1").test, hits_at=(1, 5)
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for family in FAMILY_ORDER:
        rows.append(f"--- {family} (V1) ---")
        rows.append(
            f"{'approach':9s} {'H@1':>6s} {'H@5':>6s} {'MRR':>6s}   {'paper H@1':>9s}"
        )
        for name in APPROACH_ORDER:
            metrics = results[(name, family)]
            rows.append(
                f"{name:9s} {metrics.hits_at(1):6.3f} {metrics.hits_at(5):6.3f} "
                f"{metrics.mrr:6.3f}   {PAPER_HITS1_V1[family][name]:9.3f}"
            )
    rows.append("")
    rows.append("expected shape: RDGCN / BootEA / MultiKE occupy the top tier;")
    rows.append("MTransE / IPTransE / JAPE the bottom tier (paper §7.1 (i))")
    report("Table 5 - main results (V1)", rows, "table5.txt")

    # headline finding: the paper's top-3 set dominates the bottom tier
    for family in FAMILY_ORDER:
        top = max(
            results[(n, family)].hits_at(1) for n in ("BootEA", "MultiKE", "RDGCN")
        )
        weak = min(
            results[(n, family)].hits_at(1) for n in ("BootEA", "MultiKE", "RDGCN")
        )
        floor = max(
            results[(n, family)].hits_at(1) for n in ("MTransE", "IPTransE", "JAPE")
        )
        assert top > floor, f"{family}: top tier should beat the bottom tier"
        del weak


def bench_table5_sparse_vs_dense(benchmark):
    """§5.2's two density effects.

    The paper finds that (a) relation-based approaches with strong
    negative sampling / bootstrapping gain on the dense V2 datasets, and
    (b) plain-TransE approaches (MTransE, JAPE) can *drop* on dense data
    because TransE mishandles multi-mapping relations, which are far more
    frequent there.  At bench scale effect (a) shows robustly on BootEA
    and effect (b) on the TransE-only models.
    """
    probes = ["MTransE", "JAPE", "IPTransE", "SEA", "RSN4EA", "BootEA"]

    def run():
        results = {}
        for version in ("V1", "V2"):
            pair = dataset("EN-FR", version)
            multi = len(pair.kg1.multi_mapping_relation_entities())
            results[("_multi", version)] = multi / max(1, pair.kg1.num_entities)
            for name in probes:
                approach = trained(name, "EN-FR", version)
                results[(name, version)] = approach.evaluate(
                    fold("EN-FR", version).test, hits_at=(1,)
                ).hits_at(1)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'approach':9s} {'V1 H@1':>7s} {'V2 H@1':>7s} {'delta':>7s}"]
    for name in probes:
        v1, v2 = results[(name, "V1")], results[(name, "V2")]
        rows.append(f"{name:9s} {v1:7.3f} {v2:7.3f} {v2 - v1:+7.3f}")
    rows.append("")
    rows.append(
        f"multi-mapping entities: V1 {results[('_multi', 'V1')]:.1%} "
        f"vs V2 {results[('_multi', 'V2')]:.1%} (paper: 34.9% vs 71.2%)"
    )
    rows.append("paper: BootEA .507->.660, RSN4EA .393->.579 gain on dense data;")
    rows.append("MTransE/JAPE drop on some dense datasets (multi-mapping relations)")
    report("Table 5 - sparse (V1) vs dense (V2)", rows, "table5_v1v2.txt")

    # effect (a): bootstrapped relation learning gains clearly on V2
    assert results[("BootEA", "V2")] > results[("BootEA", "V1")] + 0.03
    # density premise: V2 has far more multi-mapping entities
    assert results[("_multi", "V2")] > results[("_multi", "V1")]
