"""Figure 3: IDS sample degree distributions vs the source KG."""

from repro.datagen import source_pair
from repro.kg import degree_distribution, js_divergence
from repro.sampling import ids_sample

from _common import BENCH_SIZE, report


def bench_fig3_ids_fidelity(benchmark):
    def run():
        out = {}
        for version in ("V1", "V2"):
            source = source_pair(
                "EN-FR", n_entities=int(BENCH_SIZE * 2.2), version=version, seed=0
            )
            small = ids_sample(source, BENCH_SIZE, seed=0)
            large = ids_sample(source, int(BENCH_SIZE * 1.5), seed=0)
            out[version] = (source, small, large)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'dataset':24s} {'#entities':>10s} {'deg':>6s} {'JS':>7s}"]
    for version, (source, small, large) in out.items():
        reference = degree_distribution(source.kg1)
        rows.append(
            f"source {version:18s} {source.kg1.num_entities:10d} "
            f"{source.kg1.average_degree():6.2f} {'—':>7s}"
        )
        for label, pair in ((f"sample small {version}", small),
                            (f"sample large {version}", large)):
            js = js_divergence(reference, degree_distribution(pair.kg1))
            rows.append(
                f"{label:24s} {pair.kg1.num_entities:10d} "
                f"{pair.kg1.average_degree():6.2f} {js:7.1%}"
            )
    rows.append("")
    rows.append("paper: 15K/100K samples keep JS <= 5% of the source (Fig. 3)")
    report("Figure 3 - IDS fidelity", rows, "fig3.txt")

    for version, (source, small, large) in out.items():
        reference = degree_distribution(source.kg1)
        assert js_divergence(reference, degree_distribution(small.kg1)) < 0.10
        assert js_divergence(reference, degree_distribution(large.kg1)) < 0.10
