"""Table 1: categorization of the embedding-based approaches.

Rendered live from each approach's ``ApproachInfo`` and asserted against
the paper's table, so drift between implementation and documentation is
impossible.
"""

from repro.approaches import APPROACHES

from _common import APPROACH_ORDER, report

# Paper Table 1 rows for the 12 implemented approaches:
# (relation embedding, attribute embedding, metric, combination, learning)
PAPER_TABLE1 = {
    "MTransE": ("Triple", "-", "euclidean", "Transformation", "Supervised"),
    "IPTransE": ("Path", "-", "euclidean", "Sharing", "Semi-supervised"),
    "JAPE": ("Triple", "Att.", "cosine", "Sharing", "Supervised"),
    "BootEA": ("Triple", "-", "cosine", "Swapping", "Semi-supervised"),
    "KDCoE": ("Triple", "Literal", "euclidean", "Transformation", "Semi-supervised"),
    "GCNAlign": ("Neighbor", "Att.", "manhattan", "Calibration", "Supervised"),
    "AttrE": ("Triple", "Literal", "cosine", "Sharing", "Supervised"),
    "IMUSE": ("Triple", "Literal", "cosine", "Sharing", "Supervised"),
    "SEA": ("Triple", "-", "cosine", "Transformation", "Supervised"),
    "RSN4EA": ("Path", "-", "cosine", "Sharing", "Supervised"),
    "MultiKE": ("Triple", "Literal", "cosine", "Swapping", "Supervised"),
    "RDGCN": ("Neighbor", "Literal", "manhattan", "Calibration", "Supervised"),
}

# Implementation deviations from the paper's exact cells, with reasons.
KNOWN_DEVIATIONS = {
    # BootEA's paper row says Swapping; our implementation additionally
    # keeps a calibration term (documented in trans_family.py).
}


def bench_table1_categorization(benchmark):
    def run():
        return {
            name: (
                cls.info.relation_embedding,
                cls.info.attribute_embedding,
                cls.info.metric,
                cls.info.combination,
                cls.info.learning,
            )
            for name, cls in APPROACHES.items()
        }

    implemented = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{'approach':9s} {'relation':9s} {'attr':8s} {'metric':10s} "
        f"{'combination':15s} {'learning':15s}"
    ]
    for name in APPROACH_ORDER:
        rel, attr, metric, combo, learning = implemented[name]
        marker = "" if implemented[name] == PAPER_TABLE1[name] else "  (*)"
        rows.append(
            f"{name:9s} {rel:9s} {attr:8s} {metric:10s} {combo:15s} "
            f"{learning:15s}{marker}"
        )
    rows.append("")
    rows.append("(*) marks any cell differing from the paper's Table 1")
    report("Table 1 - approach categorization", rows, "table1.txt")

    for name in APPROACH_ORDER:
        if name in KNOWN_DEVIATIONS:
            continue
        assert implemented[name] == PAPER_TABLE1[name], (
            f"{name}: implemented {implemented[name]} != paper {PAPER_TABLE1[name]}"
        )
