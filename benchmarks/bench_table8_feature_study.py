"""Table 8: feature study — relation-only vs attribute-only (EN-FR V1)."""

from repro.alignment import prf_metrics
from repro.approaches import get_approach
from repro.conventional import LogMap, Paris

from _common import make_config, dataset, fold, report


def bench_table8_feature_study(benchmark):
    def run():
        pair = dataset("EN-FR", "V1")
        split = fold("EN-FR", "V1")
        gold = set(pair.alignment)
        out = {}
        for mode, view in (("rel-only", pair.without_attributes()),
                           ("attr-only", pair.without_relations())):
            out[("LogMap", mode)] = prf_metrics(
                LogMap().align(view).alignment, gold
            ).f1
            out[("PARIS", mode)] = prf_metrics(
                Paris().align(view).alignment, gold
            ).f1
            flags = (
                dict(use_attributes=False)
                if mode == "rel-only" else dict(use_relations=False)
            )
            for name in ("BootEA", "MultiKE", "RDGCN"):
                approach = get_approach(name, make_config(**flags))
                approach.fit(view, split)
                out[(name, mode)] = approach.evaluate(
                    split.test, hits_at=(1,)
                ).hits_at(1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'system':9s} {'rel-only':>9s} {'attr-only':>10s}"]
    for system in ("LogMap", "PARIS", "BootEA", "MultiKE", "RDGCN"):
        rows.append(
            f"{system:9s} {results[(system, 'rel-only')]:9.3f} "
            f"{results[(system, 'attr-only')]:10.3f}"
        )
    rows.append("")
    rows.append("paper: conventional systems output NOTHING from relations alone")
    rows.append("(LogMap/PARIS '-' in Table 8) but keep working attribute-only;")
    rows.append("BootEA is unaffected relation-only and fails attribute-only;")
    rows.append("MultiKE/RDGCN degrade without attributes but still work")
    report("Table 8 - feature study (EN-FR V1)", rows, "table8.txt")

    assert results[("LogMap", "rel-only")] == 0.0
    assert results[("PARIS", "rel-only")] == 0.0
    assert results[("PARIS", "attr-only")] > 0.5
    assert results[("BootEA", "rel-only")] > results[("BootEA", "attr-only")]
    assert results[("MultiKE", "attr-only")] > results[("BootEA", "attr-only")]
