"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md's per-experiment index).  Datasets and trained
approaches are cached per session so benches share work.

Scale knobs (environment variables):

* ``REPRO_BENCH_SIZE``   — entities per dataset (default 300)
* ``REPRO_BENCH_EPOCHS`` — training epochs (default 40)
* ``REPRO_BENCH_DIM``    — embedding dimension (default 32)
* ``REPRO_BENCH_TRACE``  — non-empty: record repro.obs spans for every
  bench in the process and write ``reports/events.jsonl`` (readable via
  ``repro obs-report``) plus ``reports/trace.json`` (chrome://tracing)
  at exit
"""

from __future__ import annotations

import atexit
import json
import os
import sys
from functools import lru_cache
from pathlib import Path

from repro import benchmark_pair
from repro.approaches import ApproachConfig, EmbeddingApproach, get_approach
from repro.kg import AlignmentSplit, KGPair

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "300"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))

REPORT_DIR = Path(__file__).parent / "reports"

if os.environ.get("REPRO_BENCH_TRACE"):
    from repro import obs as _obs

    _tracer = _obs.Tracer()
    _obs.set_tracer(_tracer)

    @atexit.register
    def _write_trace_reports() -> None:
        if not _tracer.events:
            return
        REPORT_DIR.mkdir(exist_ok=True)
        _tracer.write_jsonl(REPORT_DIR / "events.jsonl")
        _tracer.write_chrome_trace(REPORT_DIR / "trace.json")
        sys.__stdout__.write(
            f"wrote {len(_tracer.events)} telemetry events to "
            f"{REPORT_DIR / 'events.jsonl'} (+ trace.json)\n"
        )

APPROACH_ORDER = [
    "MTransE", "IPTransE", "JAPE", "KDCoE", "BootEA", "GCNAlign",
    "AttrE", "IMUSE", "SEA", "RSN4EA", "MultiKE", "RDGCN",
]

FAMILY_ORDER = ["EN-FR", "EN-DE", "D-W", "D-Y"]


def report(title: str, lines: list[str], filename: str) -> None:
    """Print a table to the real stdout (visible under pytest capture)
    and persist it under ``benchmarks/reports/``."""
    text = "\n".join([f"== {title} ==", *lines, ""])
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / filename).write_text(text, encoding="utf-8")


def write_json_report(target: str | Path, payload) -> Path:
    """Persist a machine-readable report: a bare filename lands under
    ``benchmarks/reports/``, a path with directories is used as-is.

    Keys are sorted so report diffs are stable run to run regardless of
    dict construction order.
    """
    path = Path(target)
    if path.parent == Path("."):
        REPORT_DIR.mkdir(exist_ok=True)
        path = REPORT_DIR / path
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def make_config(**overrides) -> ApproachConfig:
    """The Table 4-style common hyper-parameters at bench scale."""
    defaults = dict(dim=BENCH_DIM, epochs=BENCH_EPOCHS, lr=0.05,
                    batch_size=1024, n_negatives=5, valid_every=10)
    defaults.update(overrides)
    return ApproachConfig(**defaults)


@lru_cache(maxsize=None)
def dataset(family: str, version: str = "V1", size: int | None = None) -> KGPair:
    """One benchmark dataset per (family, version), via the full pipeline."""
    return benchmark_pair(
        family, size=size or BENCH_SIZE, version=version, seed=0,
        method="ids",
    )


@lru_cache(maxsize=None)
def fold(family: str, version: str = "V1") -> AlignmentSplit:
    """First of the five folds (benches default to one fold for speed)."""
    return dataset(family, version).five_fold_splits(seed=0)[0]


@lru_cache(maxsize=None)
def trained(name: str, family: str, version: str = "V1") -> EmbeddingApproach:
    """A trained approach, cached so benches share the heavy lifting."""
    approach = get_approach(name, make_config())
    approach.fit(dataset(family, version), fold(family, version))
    return approach


def hits1(approach: EmbeddingApproach, family: str, version: str = "V1",
          **kwargs) -> float:
    return approach.evaluate(
        fold(family, version).test, hits_at=(1,), **kwargs
    ).hits_at(1)
