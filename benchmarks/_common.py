"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md's per-experiment index).  Datasets and trained
approaches are cached per session so benches share work.

Scale knobs (environment variables):

* ``REPRO_BENCH_SIZE``   — entities per dataset (default 300)
* ``REPRO_BENCH_EPOCHS`` — training epochs (default 40)
* ``REPRO_BENCH_DIM``    — embedding dimension (default 32)
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache
from pathlib import Path

from repro import benchmark_pair
from repro.approaches import ApproachConfig, EmbeddingApproach, get_approach
from repro.kg import AlignmentSplit, KGPair

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "300"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))

REPORT_DIR = Path(__file__).parent / "reports"

APPROACH_ORDER = [
    "MTransE", "IPTransE", "JAPE", "KDCoE", "BootEA", "GCNAlign",
    "AttrE", "IMUSE", "SEA", "RSN4EA", "MultiKE", "RDGCN",
]

FAMILY_ORDER = ["EN-FR", "EN-DE", "D-W", "D-Y"]


def report(title: str, lines: list[str], filename: str) -> None:
    """Print a table to the real stdout (visible under pytest capture)
    and persist it under ``benchmarks/reports/``."""
    text = "\n".join([f"== {title} ==", *lines, ""])
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / filename).write_text(text, encoding="utf-8")


def make_config(**overrides) -> ApproachConfig:
    """The Table 4-style common hyper-parameters at bench scale."""
    defaults = dict(dim=BENCH_DIM, epochs=BENCH_EPOCHS, lr=0.05,
                    batch_size=1024, n_negatives=5, valid_every=10)
    defaults.update(overrides)
    return ApproachConfig(**defaults)


@lru_cache(maxsize=None)
def dataset(family: str, version: str = "V1", size: int | None = None) -> KGPair:
    """One benchmark dataset per (family, version), via the full pipeline."""
    return benchmark_pair(
        family, size=size or BENCH_SIZE, version=version, seed=0,
        method="ids",
    )


@lru_cache(maxsize=None)
def fold(family: str, version: str = "V1") -> AlignmentSplit:
    """First of the five folds (benches default to one fold for speed)."""
    return dataset(family, version).five_fold_splits(seed=0)[0]


@lru_cache(maxsize=None)
def trained(name: str, family: str, version: str = "V1") -> EmbeddingApproach:
    """A trained approach, cached so benches share the heavy lifting."""
    approach = get_approach(name, make_config())
    approach.fit(dataset(family, version), fold(family, version))
    return approach


def hits1(approach: EmbeddingApproach, family: str, version: str = "V1",
          **kwargs) -> float:
    return approach.evaluate(
        fold(family, version).test, hits_at=(1,), **kwargs
    ).hits_at(1)
