"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md's per-experiment index).  Datasets and trained
approaches are cached per session so benches share work.

Scale knobs (environment variables):

* ``REPRO_BENCH_SIZE``   — entities per dataset (default 300)
* ``REPRO_BENCH_EPOCHS`` — training epochs (default 40)
* ``REPRO_BENCH_DIM``    — embedding dimension (default 32)
* ``REPRO_BENCH_TRACE``  — non-empty: record repro.obs spans for every
  bench in the process and write ``reports/events.jsonl`` (readable via
  ``repro obs-report``) plus ``reports/trace.json`` (chrome://tracing)
  at exit, and append one RunRecord per bench artifact to the run
  ledger (``reports/ledger.jsonl``; see ``repro obs-ledger`` /
  ``repro obs-gate``)
* ``REPRO_LEDGER_PATH``  — override the ledger destination
"""

from __future__ import annotations

import atexit
import json
import os
import sys
from functools import lru_cache
from pathlib import Path

from repro import benchmark_pair
from repro.approaches import ApproachConfig, EmbeddingApproach, get_approach
from repro.kg import AlignmentSplit, KGPair

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "300"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "40"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))

REPORT_DIR = Path(__file__).parent / "reports"
ROOT_DIR = Path(__file__).resolve().parent.parent


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def report_path(filename: str) -> Path:
    """The one place benchmark reports live: ``benchmarks/reports/``.

    Every bench routes its artifacts through here so the ledger and the
    perf gate have a single directory to look at.
    """
    try:
        REPORT_DIR.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        _warn(f"could not create report directory {REPORT_DIR}: {error}")
    return REPORT_DIR / filename


if os.environ.get("REPRO_BENCH_TRACE"):
    from repro import obs as _obs

    _tracer = _obs.Tracer()
    _obs.set_tracer(_tracer)
    # nested recorders (cross_validate, obs-smoke) land in the same ledger
    os.environ.setdefault("REPRO_LEDGER_PATH",
                          str(REPORT_DIR / "ledger.jsonl"))

    @atexit.register
    def _write_trace_reports() -> None:
        # Runs during interpreter shutdown: an unwritable/missing
        # reports/ directory must cost a warning, never a traceback.
        if not _tracer.events:
            return
        try:
            REPORT_DIR.mkdir(parents=True, exist_ok=True)
            _tracer.write_jsonl(REPORT_DIR / "events.jsonl")
            _tracer.write_chrome_trace(REPORT_DIR / "trace.json")
        except OSError as error:
            _warn(f"could not write telemetry reports under {REPORT_DIR}: "
                  f"{error}")
            return
        sys.__stdout__.write(
            f"wrote {len(_tracer.events)} telemetry events to "
            f"{REPORT_DIR / 'events.jsonl'} (+ trace.json)\n"
        )


# ---------------------------------------------------------------------------
# run ledger integration: one RunRecord per bench artifact
# ---------------------------------------------------------------------------
_RECORDED_BENCHES: set[str] = set()


def bench_config(**extra) -> dict:
    """The knobs that make two bench runs comparable (fingerprinted)."""
    config = {"size": BENCH_SIZE, "epochs": BENCH_EPOCHS, "dim": BENCH_DIM}
    config.update(extra)
    return config


def record_bench(name: str, scalars: dict | None = None) -> dict | None:
    """Append one ledger RunRecord for the named bench artifact.

    Active when ``REPRO_BENCH_TRACE`` or ``REPRO_LEDGER_PATH`` is set;
    at most one record per artifact name per process (re-renders of the
    same table don't inflate the history).  Failures warn and continue —
    this shares the guarded-path policy of the atexit trace writer.
    """
    path = os.environ.get("REPRO_LEDGER_PATH")
    if not path and os.environ.get("REPRO_BENCH_TRACE"):
        path = str(REPORT_DIR / "ledger.jsonl")
    if not path or name in _RECORDED_BENCHES:
        return None
    from repro.obs.ledger import record_run

    record = record_run("bench", name, config=bench_config(bench=name),
                        scalars=scalars, path=path)
    if record is not None:
        _RECORDED_BENCHES.add(name)
    return record


def _bench_scalars(payload) -> dict:
    """Headline numbers the perf gate reads, fished out of a JSON
    report payload (defensive: absent keys mean fewer scalars)."""
    scalars: dict = {}
    if not isinstance(payload, dict):
        return scalars
    scales = payload.get("scales")
    if isinstance(scales, list) and scales:
        last = scales[-1]
        try:
            scalars["steps_per_second"] = float(last["sparse"]["steps_per_sec"])
            scalars["median_step_ms"] = float(last["sparse"]["median_step_ms"])
            scalars["speedup"] = float(last["speedup"])
        except (KeyError, TypeError, ValueError):
            pass
    return scalars

APPROACH_ORDER = [
    "MTransE", "IPTransE", "JAPE", "KDCoE", "BootEA", "GCNAlign",
    "AttrE", "IMUSE", "SEA", "RSN4EA", "MultiKE", "RDGCN",
]

FAMILY_ORDER = ["EN-FR", "EN-DE", "D-W", "D-Y"]


def report(title: str, lines: list[str], filename: str) -> None:
    """Print a table to the real stdout (visible under pytest capture)
    and persist it under ``benchmarks/reports/``."""
    text = "\n".join([f"== {title} ==", *lines, ""])
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    report_path(filename).write_text(text, encoding="utf-8")
    record_bench(Path(filename).stem)


def write_json_report(target: str | Path, payload) -> Path:
    """Persist a machine-readable report: a bare filename lands under
    ``benchmarks/reports/``, a path with directories is used as-is.

    Keys are sorted so report diffs are stable run to run regardless of
    dict construction order.  ``BENCH_*.json`` reports additionally get
    a repo-root symlink (copy when symlinks are unavailable) so paths
    that predate the unified ``benchmarks/reports/`` location keep
    resolving.
    """
    path = Path(target)
    if path.parent == Path("."):
        path = report_path(path.name)
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    if path.name.startswith("BENCH_") and path.parent == REPORT_DIR:
        _mirror_to_root(path)
    record_bench(path.stem, scalars=_bench_scalars(payload))
    return path


def _mirror_to_root(path: Path) -> None:
    """Refresh the root-level ``BENCH_*.json`` back-compat alias."""
    link = ROOT_DIR / path.name
    try:
        if link.is_symlink() or link.exists():
            link.unlink()
        link.symlink_to(os.path.relpath(path, ROOT_DIR))
    except OSError:
        try:
            link.write_bytes(path.read_bytes())
        except OSError as error:
            _warn(f"could not mirror {path.name} to {ROOT_DIR}: {error}")


def make_config(**overrides) -> ApproachConfig:
    """The Table 4-style common hyper-parameters at bench scale."""
    defaults = dict(dim=BENCH_DIM, epochs=BENCH_EPOCHS, lr=0.05,
                    batch_size=1024, n_negatives=5, valid_every=10)
    defaults.update(overrides)
    return ApproachConfig(**defaults)


@lru_cache(maxsize=None)
def dataset(family: str, version: str = "V1", size: int | None = None) -> KGPair:
    """One benchmark dataset per (family, version), via the full pipeline."""
    return benchmark_pair(
        family, size=size or BENCH_SIZE, version=version, seed=0,
        method="ids",
    )


@lru_cache(maxsize=None)
def fold(family: str, version: str = "V1") -> AlignmentSplit:
    """First of the five folds (benches default to one fold for speed)."""
    return dataset(family, version).five_fold_splits(seed=0)[0]


@lru_cache(maxsize=None)
def trained(name: str, family: str, version: str = "V1") -> EmbeddingApproach:
    """A trained approach, cached so benches share the heavy lifting."""
    approach = get_approach(name, make_config())
    approach.fit(dataset(family, version), fold(family, version))
    return approach


def hits1(approach: EmbeddingApproach, family: str, version: str = "V1",
          **kwargs) -> float:
    return approach.evaluate(
        fold(family, version).test, hits_at=(1,), **kwargs
    ).hits_at(1)
