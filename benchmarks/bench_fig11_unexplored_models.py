"""Figure 11: unexplored KG embedding models in the MTransE frame.

Replaces MTransE's relation model with TransH, TransD, ProjE, ConvE,
SimplE, RotatE (plus TransR and HolE, whose near-zero scores the paper
omits from the plot) on the V1 datasets.
"""

from repro.approaches import MTransE

from _common import make_config, dataset, fold, report

MODELS = ["transe", "transh", "transd", "proje", "conve", "simple", "rotate",
          "transr", "hole"]
FAMILIES = ["EN-FR", "D-Y"]


def bench_fig11_unexplored_models(benchmark):
    def run():
        out = {}
        for family in FAMILIES:
            pair = dataset(family, "V1")
            split = fold(family, "V1")
            for model in MODELS:
                approach = MTransE(make_config(epochs=30), model_name=model)
                approach.fit(pair, split)
                out[(model, family)] = approach.evaluate(
                    split.test, hits_at=(1,)
                ).hits_at(1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'model':8s} " + " ".join(f"{f:>8s}" for f in FAMILIES)]
    for model in MODELS:
        cells = " ".join(f"{results[(model, f)]:8.3f}" for f in FAMILIES)
        label = model + (" (base)" if model == "transe" else "")
        rows.append(f"{label:8s} {cells}")
    rows.append("")
    rows.append("paper: TransH/TransD stable and promising; RotatE the strongest;")
    rows.append("TransR and HolE below 0.01 (omitted from the paper's plot);")
    rows.append("ConvE/ProjE promising but weak on D-Y (few relations)")
    rows.append("NOTE: at bench scale (~60 training pairs) the non-Euclidean and")
    rows.append("deep models underfit the alignment transformation, so RotatE's")
    rows.append("paper-scale win does not reproduce here — see EXPERIMENTS.md")
    report("Figure 11 - unexplored embedding models", rows, "fig11.txt")

    for family in FAMILIES:
        base = results[("transe", family)]
        # TransH remains stable and competitive with the baseline
        assert results[("transh", family)] > 0.5 * base or \
            results[("transh", family)] > 0.05
        # TransR needs relation alignment; it must trail the baseline
        assert results[("transr", family)] <= base + 0.05
        # HolE degenerates (as in the paper, which omits it from the plot)
        assert results[("hole", family)] < 0.1
    best = max(MODELS, key=lambda m: sum(results[(m, f)] for f in FAMILIES))
    assert best not in ("transr", "hole"), "degenerate models cannot lead"
