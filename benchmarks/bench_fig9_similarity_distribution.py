"""Figure 9: top-5 cross-KG neighbor similarity distribution on D-Y V1."""

from repro.analysis import similarity_distribution

from _common import APPROACH_ORDER, fold, report, trained


def bench_fig9_similarity_distribution(benchmark):
    def run():
        split = fold("D-Y", "V1")
        sources = [a for a, _ in split.test]
        targets = [b for _, b in split.test]
        out = {}
        for name in APPROACH_ORDER:
            approach = trained(name, "D-Y", "V1")
            similarity = approach.similarity_between(sources, targets, metric="cosine")
            out[name] = similarity_distribution(similarity, k=5)
        return out

    distributions = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'approach':9s} " + " ".join(f"{'top' + str(i + 1):>6s}" for i in range(5))
            + f" {'gap':>6s}"]
    for name in APPROACH_ORDER:
        dist = distributions[name]
        tops = " ".join(f"{v:6.3f}" for v in dist.top_k_means)
        rows.append(f"{name:9s} {tops} {dist.variance:6.3f}")
    rows.append("")
    rows.append("paper: BootEA/MultiKE/RDGCN show high top-1 similarity AND a")
    rows.append("large top-1..top-5 gap; MTransE/IPTransE/JAPE are flat (fuzzy)")
    report("Figure 9 - similarity distribution (D-Y V1)", rows, "fig9.txt")

    strong_gap = min(distributions[n].variance for n in ("MultiKE", "RDGCN"))
    weak_gap = distributions["MTransE"].variance
    assert strong_gap > weak_gap, "top approaches should be more discriminative"
