"""Table 6: Hits@1 under greedy / CSLS / stable marriage on D-Y V1."""

from repro.alignment import prf_metrics

from _common import APPROACH_ORDER, fold, report, trained

PAPER = {  # D-Y-15K (V1): greedy, greedy+CSLS, SM, SM+CSLS
    "MTransE": (.463, .550, .694, .697), "IPTransE": (.313, .339, .370, .369),
    "JAPE": (.469, .549, .692, .691), "KDCoE": (.661, .679, .840, .815),
    "BootEA": (.739, .741, .783, .782), "GCNAlign": (.465, .531, .613, .582),
    "AttrE": (.668, .778, .845, .857), "IMUSE": (.392, .448, .520, .518),
    "SEA": (.500, .557, .647, .650), "RSN4EA": (.514, .548, .571, .575),
    "MultiKE": (.903, .925, .951, .956), "RDGCN": (.931, .956, .962, .979),
}


def _sm_hits1(approach, test_pairs, csls_k):
    predicted = approach.predict(test_pairs, strategy="stable_marriage",
                                 csls_k=csls_k)
    return prf_metrics(predicted, set(test_pairs)).precision


def bench_table6_inference_strategies(benchmark):
    def run():
        split = fold("D-Y", "V1")
        out = {}
        for name in APPROACH_ORDER:
            approach = trained(name, "D-Y", "V1")
            greedy = approach.evaluate(split.test, hits_at=(1,)).hits_at(1)
            greedy_csls = approach.evaluate(
                split.test, hits_at=(1,), csls_k=10
            ).hits_at(1)
            sm = _sm_hits1(approach, split.test, csls_k=0)
            sm_csls = _sm_hits1(approach, split.test, csls_k=10)
            out[name] = (greedy, greedy_csls, sm, sm_csls)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"{'approach':9s} {'greedy':>7s} {'+CSLS':>7s} {'SM':>7s} {'SM+CSLS':>8s}"
        f"   (paper: {'greedy':>6s} {'+CSLS':>6s} {'SM':>6s} {'SM+CSLS':>7s})"
    ]
    for name in APPROACH_ORDER:
        g, gc, s, sc = results[name]
        pg, pgc, ps, psc = PAPER[name]
        rows.append(
            f"{name:9s} {g:7.3f} {gc:7.3f} {s:7.3f} {sc:8.3f}"
            f"   (paper: {pg:6.3f} {pgc:6.3f} {ps:6.3f} {psc:7.3f})"
        )
    rows.append("")
    rows.append("expected shape: CSLS lifts greedy; SM lifts further; SM gains")
    rows.append("little extra from CSLS (paper §6.1.2)")
    report("Table 6 - inference strategies (D-Y V1)", rows, "table6.txt")

    csls_wins = sum(1 for name in APPROACH_ORDER
                    if results[name][1] >= results[name][0])
    # SM's gain requires embeddings good enough that the global matching
    # is meaningful; at bench scale we count the better of SM / SM+CSLS
    sm_wins = sum(1 for name in APPROACH_ORDER
                  if max(results[name][2], results[name][3]) >= results[name][0])
    assert csls_wins >= 8, f"CSLS should help most approaches ({csls_wins}/12)"
    assert sm_wins >= 8, f"SM should help most approaches ({sm_wins}/12)"
