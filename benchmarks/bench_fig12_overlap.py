"""Figure 12: overlap of correct alignment found by LogMap, PARIS and
the best embedding approach (EN-FR V1)."""

from repro.analysis import prediction_overlap
from repro.conventional import LogMap, Paris

from _common import dataset, fold, report, trained


def bench_fig12_overlap(benchmark):
    def run():
        pair = dataset("EN-FR", "V1")
        split = fold("EN-FR", "V1")
        test_gold = set(split.test)
        correct = {
            "LogMap": set(LogMap().align(pair).alignment) & test_gold,
            "PARIS": set(Paris().align(pair).alignment) & test_gold,
        }
        approach = trained("RDGCN", "EN-FR", "V1")
        correct["OpenEA"] = set(approach.predict(split.test)) & test_gold
        return prediction_overlap(correct, test_gold), correct

    overlap, correct = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [f"{'region':30s} {'share':>7s}"]
    for region, share in sorted(overlap.items(), key=lambda kv: -kv[1]):
        label = " & ".join(sorted(region)) if region else "none"
        rows.append(f"{label:30s} {share:7.1%}")
    rows.append("")
    rows.append("paper (EN-FR-100K V1): 46.6% found by all three; 6.4% by none;")
    rows.append("OpenEA finds 13.25% that LogMap misses and 7.51% PARIS misses —")
    rows.append("the systems are complementary (motivates hybrid alignment)")
    report("Figure 12 - prediction overlap", rows, "fig12.txt")

    # complementarity: each system finds something the others miss
    exclusive_openea = overlap[frozenset({"OpenEA"})]
    exclusive_paris = overlap[frozenset({"PARIS"})]
    assert exclusive_openea + overlap[frozenset({"OpenEA", "LogMap"})] > 0.0
    assert exclusive_paris >= 0.0
    assert sum(overlap.values()) > 0.999
    del correct
