"""Figure 7: precision/recall/F1 of the augmented alignment during the
semi-supervised iterations of IPTransE, BootEA and KDCoE (EN-FR V1)."""

from _common import report, trained

PROBES = ["IPTransE", "BootEA", "KDCoE"]


def bench_fig7_semi_supervised(benchmark):
    def run():
        return {name: trained(name, "EN-FR", "V1").log.augmentation
                for name in PROBES}

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in PROBES:
        rows.append(f"--- {name} ---")
        rows.append(f"{'iter':>4s} {'#prop':>6s} {'P':>6s} {'R':>6s} {'F1':>6s}")
        for record in records[name]:
            rows.append(
                f"{record.iteration:4d} {record.n_proposed:6d} "
                f"{record.precision:6.3f} {record.recall:6.3f} {record.f1:6.3f}"
            )
    rows.append("")
    rows.append("paper: BootEA's editing keeps precision stable while recall grows;")
    rows.append("IPTransE's precision decays (no error elimination); KDCoE is capped")
    rows.append("by description coverage")
    report("Figure 7 - semi-supervised augmentation quality", rows, "fig7.txt")

    bootea = records["BootEA"]
    iptranse = records["IPTransE"]
    assert bootea, "BootEA must record augmentation rounds"
    assert iptranse, "IPTransE must record augmentation rounds"
    # BootEA: recall grows over self-training
    assert bootea[-1].recall >= bootea[0].recall
    # final precision: editing (BootEA) beats no-editing (IPTransE)
    assert bootea[-1].precision > iptranse[-1].precision
