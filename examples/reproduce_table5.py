"""Reproduce a slice of Table 5 with the paper's full protocol.

Runs 5-fold cross-validation for three approaches on one dataset and
exports the results in the CSV format the paper's artifacts use.  The
full-table regeneration lives in benchmarks/bench_table5_main_results.py;
this example shows the library calls behind it.

Run:  python examples/reproduce_table5.py
"""

from pathlib import Path

from repro import ApproachConfig, benchmark_pair, cross_validate, get_approach
from repro.pipeline import export_csv, export_fold_csv


def main() -> None:
    pair = benchmark_pair("D-Y", size=300, version="V1", seed=0)
    config = ApproachConfig(dim=32, epochs=40, lr=0.05)

    results = []
    for name in ("MTransE", "BootEA", "RDGCN"):
        result = cross_validate(
            lambda: get_approach(name, config), pair,
            n_folds=2,  # set to 5 for the paper's exact protocol
            hits_at=(1, 5, 10),
        )
        results.append(result)
        print(result.format(metrics=("hits@1", "hits@5", "mrr")))

    out = Path("table5_slice")
    export_csv(results, out / "summary.csv")
    export_fold_csv(results, out / "folds.csv")
    print(f"\nwrote {out}/summary.csv and {out}/folds.csv")
    print("(paper D-Y-15K V1 Hits@1: MTransE .463, BootEA .739, RDGCN .931)")


if __name__ == "__main__":
    main()
