"""Dataset generation: IDS vs the RAS/PRS baselines, and OpenEA-format I/O.

Reproduces the workflow of the paper's §3: build source KGs, sample them
down with each algorithm, and compare sample fidelity (Table 3's
metrics).  The resulting dataset is saved in the OpenEA directory layout
so it can be consumed by other tooling.

Run:  python examples/dataset_sampling.py
"""

import tempfile
from pathlib import Path

from repro import ids_sample, prs_sample, ras_sample, source_pair
from repro.kg import (
    clustering_coefficient,
    degree_distribution,
    isolated_entity_ratio,
    js_divergence,
    load_pair,
    save_pair,
    save_splits,
)


def describe(name, sample, reference_dist):
    js = js_divergence(reference_dist, degree_distribution(sample.kg1))
    print(
        f"  {name:4s} | deg={sample.kg1.average_degree():5.2f} "
        f"JS={js:6.1%} isolates={isolated_entity_ratio(sample.kg1):6.1%} "
        f"clustering={clustering_coefficient(sample.kg1):.3f}"
    )


def main() -> None:
    # Source KG pair (stands in for DBpedia EN-FR; see DESIGN.md).
    source = source_pair("EN-FR", n_entities=1500, version="V1", seed=0)
    reference = degree_distribution(source.kg1)
    print(f"source: {source}, avg degree {source.kg1.average_degree():.2f}")

    print("sampling 400 aligned entities with each algorithm:")
    ids = ids_sample(source, 400, seed=0)
    describe("IDS", ids, reference)
    describe("RAS", ras_sample(source, 400, seed=0), reference)
    describe("PRS", prs_sample(source, 400, seed=0), reference)
    print("(IDS keeps the degree distribution; the baselines shred it)")

    # Persist the IDS dataset in the OpenEA directory layout.
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "EN_FR_400_V1"
        save_pair(ids, directory)
        save_splits(ids.five_fold_splits(seed=0), directory)
        reloaded = load_pair(directory)
        print(f"saved + reloaded: {reloaded}")
        print(f"files: {sorted(p.name for p in directory.iterdir())}")


if __name__ == "__main__":
    main()
