"""Quickstart: generate a benchmark dataset, train BootEA, evaluate.

Run:  python examples/quickstart.py
"""

from repro import ApproachConfig, benchmark_pair, get_approach


def main() -> None:
    # 1. Generate an EN-FR benchmark dataset with the paper's pipeline
    #    (synthetic source KGs -> IDS degree-preserving sampling).
    pair = benchmark_pair("EN-FR", size=400, version="V1", seed=0)
    print(f"dataset: {pair}")
    print(f"  KG1 avg degree {pair.kg1.average_degree():.2f}, "
          f"KG2 avg degree {pair.kg2.average_degree():.2f}")

    # 2. Split the reference alignment: 20% train / 10% valid / 70% test,
    #    the paper's 5-fold protocol (we take the first fold).
    split = pair.five_fold_splits(seed=0)[0]
    print(f"  folds: train={len(split.train)} valid={len(split.valid)} "
          f"test={len(split.test)}")

    # 3. Train BootEA (one of the paper's top-3 approaches).
    approach = get_approach("BootEA", ApproachConfig(dim=32, epochs=40, lr=0.05))
    log = approach.fit(pair, split)
    print(f"trained {approach.info.name}: {log.epochs_run} epochs "
          f"in {log.train_seconds:.1f}s")

    # 4. Evaluate with the paper's metrics.
    metrics = approach.evaluate(split.test, hits_at=(1, 5, 10))
    print(f"test metrics: {metrics}")

    # 5. The alignment module is separate: swap in CSLS + stable marriage
    #    (Table 6's enhancements) without retraining.
    from repro.alignment import prf_metrics

    predictions = approach.predict(split.test, strategy="stable_marriage", csls_k=10)
    prf = prf_metrics(predictions, set(split.test))
    print(f"stable marriage + CSLS: {prf}")


if __name__ == "__main__":
    main()
