"""Conventional (PARIS, LogMap) vs embedding-based alignment (§6.3).

Runs all three system families on one dataset, compares P/R/F1, and
computes the overlap of their correct predictions — the Figure 12
analysis that motivates hybrid systems.

Run:  python examples/conventional_vs_embedding.py
"""

from repro import ApproachConfig, LogMap, Paris, benchmark_pair, get_approach
from repro.alignment import prf_metrics
from repro.analysis import prediction_overlap


def main() -> None:
    pair = benchmark_pair("EN-FR", size=400, version="V1", seed=3)
    gold = set(pair.alignment)
    print(f"dataset: {pair}")

    correct: dict[str, set] = {}

    # conventional systems: unsupervised, full reference as gold
    for system in (Paris(), LogMap()):
        name = type(system).__name__
        predicted = set(system.align(pair).alignment)
        correct[name] = predicted & gold
        print(f"{name:8s}: {prf_metrics(predicted, gold)}")

    # embedding-based: trained on one fold, evaluated on its test pairs
    split = pair.five_fold_splits(seed=3)[0]
    approach = get_approach("RDGCN", ApproachConfig(dim=32, epochs=40, lr=0.05))
    approach.fit(pair, split)
    test_gold = set(split.test)
    predicted = set(approach.predict(split.test))
    correct["OpenEA"] = predicted & test_gold
    print(f"OpenEA  : {prf_metrics(predicted, test_gold)} "
          f"(RDGCN, evaluated on the test fold)")

    # Figure 12: overlap of correct alignment, over the common ground
    overlap = prediction_overlap(correct, test_gold)
    print("\noverlap of correct alignment (share of test gold):")
    for region, share in sorted(overlap.items(), key=lambda kv: -kv[1]):
        label = " & ".join(sorted(region)) if region else "none"
        print(f"  {label:28s} {share:6.1%}")


if __name__ == "__main__":
    main()
