"""Future directions (paper §7.2): unsupervised alignment + LSH blocking.

1. Aligns two KGs with ZERO training seeds using distant supervision and
   orthogonal Procrustes (direction: "unsupervised entity alignment").
2. Prunes the nearest-neighbor candidate space with random-hyperplane
   LSH (direction: "large-scale entity alignment").

Run:  python examples/unsupervised_and_blocking.py
"""

import time

import numpy as np

from repro import ApproachConfig, benchmark_pair
from repro.alignment import blocked_greedy_alignment, greedy_alignment
from repro.approaches import UnsupervisedProcrustes
from repro.kg import AlignmentSplit


def main() -> None:
    pair = benchmark_pair("EN-FR", size=400, version="V1", seed=4)
    split = pair.five_fold_splits(seed=4)[0]

    # --- unsupervised alignment: note the EMPTY training set -------------
    no_labels = AlignmentSplit(train=[], valid=[], test=split.test)
    approach = UnsupervisedProcrustes(
        ApproachConfig(dim=32, epochs=30, lr=0.05, valid_every=0),
        refinement_rounds=2,
    )
    approach.fit(pair, no_labels)
    metrics = approach.evaluate(split.test, hits_at=(1, 5))
    print(f"unsupervised (0 seeds, {len(approach.pseudo_seeds)} pseudo-seeds): "
          f"{metrics}")

    # --- LSH blocking for large candidate spaces -------------------------
    sources = [a for a, _ in split.test]
    targets = [b for _, b in split.test]
    source_emb = approach._source_matrix(sources)
    target_emb = approach._target_matrix(targets)

    started = time.perf_counter()
    full = greedy_alignment(source_emb @ target_emb.T)
    full_seconds = time.perf_counter() - started

    started = time.perf_counter()
    blocked, fraction = blocked_greedy_alignment(
        source_emb, target_emb, n_bits=7, n_tables=6
    )
    blocked_seconds = time.perf_counter() - started

    agreement = (full == blocked).mean()
    gold = np.arange(len(split.test))
    print(f"full greedy    : H@1={np.mean(full == gold):.3f} "
          f"({full_seconds * 1000:.1f} ms)")
    print(f"LSH-blocked    : H@1={np.mean(blocked == gold):.3f} "
          f"({blocked_seconds * 1000:.1f} ms, scored {fraction:.1%} of pairs)")
    print(f"agreement with full search: {agreement:.1%}")


if __name__ == "__main__":
    main()
