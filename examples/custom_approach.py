"""Composing a new alignment approach from the library's modules.

The paper's library (Figure 4) is built so that embedding models, loss
functions, negative samplers and alignment-module components can be
recombined freely.  This example assembles an unnamed approach:

* relation embedding: **TransH** (handles multi-mapping relations),
* combination mode: parameter *sharing* + triple *swapping*,
* negative sampling: truncated (BootEA-style hard negatives),
* alignment inference: CSLS + stable marriage.

Run:  python examples/custom_approach.py
"""

import numpy as np

from repro import ApproachConfig, benchmark_pair
from repro.alignment import prf_metrics
from repro.approaches import UnifiedTransApproach
from repro.approaches.base import ApproachInfo
from repro.embedding import TransH, TruncatedSampler


class TransHSwap(UnifiedTransApproach):
    """TransH in a shared space with swapping and hard negatives."""

    info = ApproachInfo(
        name="TransHSwap", relation_embedding="Triple", attribute_embedding="-",
        metric="cosine", combination="Swapping", learning="Supervised",
    )
    merge_seeds = True
    swapping = True
    calibration_weight = 0.5

    def _setup(self, pair, split, rng):
        super()._setup(pair, split, rng)
        # swap the relation model: TransE -> TransH
        self.model = TransH(
            self.data.n_entities, self.data.n_relations, self.config.dim, rng
        )
        from repro.autodiff import get_optimizer

        self.optimizer = get_optimizer(
            self.config.optimizer, self.model.parameters(), self.config.lr
        )
        self.sampler = TruncatedSampler(self.data.n_entities, truncation=0.25)

    def _negatives(self, batch, rng):
        return self.sampler.corrupt(batch, self.config.n_negatives, rng)

    def _after_epoch(self, epoch, rng):
        if epoch % 5 == 0:
            self.sampler.refresh(self.model.entity_embeddings())


def main() -> None:
    pair = benchmark_pair("D-Y", size=350, version="V1", seed=2)
    split = pair.five_fold_splits(seed=2)[0]

    approach = TransHSwap(ApproachConfig(dim=32, epochs=40, lr=0.05))
    approach.fit(pair, split)

    print(f"dataset: {pair}")
    print("greedy           :", approach.evaluate(split.test, hits_at=(1, 5)))
    print("greedy + CSLS    :", approach.evaluate(split.test, hits_at=(1, 5), csls_k=10))
    sm = approach.predict(split.test, strategy="stable_marriage", csls_k=10)
    print("stable marriage  :", prf_metrics(sm, set(split.test)))

    # the geometric analysis toolkit works on any approach
    from repro.analysis import hubness_isolation, similarity_distribution

    similarity = approach.similarity_between(
        [a for a, _ in split.test], [b for _, b in split.test], metric="cosine"
    )
    print("similarity profile:", similarity_distribution(similarity))
    print("hubness/isolation :", hubness_isolation(similarity))
    assert np.isfinite(similarity).all()


if __name__ == "__main__":
    main()
