"""Cross-lingual entity alignment (EN-DE) with literal-aware approaches.

Trains RDGCN and MultiKE — the two literal-driven leaders of Table 5 —
on an English-German dataset, then inspects a few predictions together
with the literal evidence behind them.

Run:  python examples/cross_lingual_alignment.py
"""

from repro import ApproachConfig, benchmark_pair, get_approach


def main() -> None:
    pair = benchmark_pair("EN-DE", size=350, version="V1", seed=1)
    split = pair.five_fold_splits(seed=1)[0]
    print(f"dataset: {pair} (languages: {pair.metadata['lang1']}"
          f" vs {pair.metadata['lang2']})")

    config = ApproachConfig(dim=32, epochs=40, lr=0.05)
    for name in ("RDGCN", "MultiKE"):
        approach = get_approach(name, config)
        approach.fit(pair, split)
        metrics = approach.evaluate(split.test, hits_at=(1, 5))
        print(f"{name:8s}: {metrics}")

    # Inspect predictions of the last approach with their literal evidence.
    predictions = approach.predict(split.test[:5])
    attrs1 = pair.kg1.entity_attributes()
    attrs2 = pair.kg2.entity_attributes()
    print("\nsample predictions (with one literal each):")
    gold = dict(split.test)
    for source, target in predictions:
        verdict = "correct" if gold.get(source) == target else "WRONG"
        lit1 = attrs1.get(source, [("-", "-")])[0][1]
        lit2 = attrs2.get(target, [("-", "-")])[0][1]
        print(f"  {source} -> {target}  [{verdict}]")
        print(f"    EN literal: {lit1!r}   DE literal: {lit2!r}")


if __name__ == "__main__":
    main()
